//! A deterministic flight recorder: bounded ring buffers of recent
//! telemetry events, span summaries, and closed windows, frozen into an
//! incident snapshot when an SLO breaches.
//!
//! Everything here is driven by the virtual clock, so an incident
//! snapshot — including which events survive in the rings at freeze
//! time — is a pure function of the workload, bitwise identical across
//! reruns and `SC_THREADS` settings.

use std::collections::VecDeque;

use sc_telemetry::json::Json;

use crate::slo::Signal;
use crate::window::WindowStats;
use crate::{fnv1a, hash_str, FNV_OFFSET};

/// One point event kept by the recorder (breaker trips, SLO edges,
/// tier-floor moves, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecEvent {
    /// Virtual cycle of the event.
    pub cycle: u64,
    /// Event name (dotted, e.g. `slo.breach`).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

impl RecEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cycle", Json::UInt(self.cycle)),
            ("name", Json::Str(self.name.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    fn fingerprint(&self) -> [u64; 3] {
        [self.cycle, hash_str(&self.name), hash_str(&self.detail)]
    }
}

/// A finalized request in one line: the flight-recorder view of a span
/// tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Request id.
    pub id: u64,
    /// Terminal outcome name (`completed`, `shed`, …).
    pub outcome: String,
    /// Sojourn time in virtual cycles.
    pub latency: u64,
    /// Dispatch attempts made.
    pub attempts: u32,
    /// Finalization cycle.
    pub finished_at: u64,
}

impl SpanSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::UInt(self.id)),
            ("outcome", Json::Str(self.outcome.clone())),
            ("latency", Json::UInt(self.latency)),
            ("attempts", Json::UInt(self.attempts as u64)),
            ("finished_at", Json::UInt(self.finished_at)),
        ])
    }

    fn fingerprint(&self) -> [u64; 5] {
        [self.id, hash_str(&self.outcome), self.latency, self.attempts as u64, self.finished_at]
    }
}

/// The serving-side state captured alongside an incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemState {
    /// Admission-queue depth at capture time.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Requests occupying the backend.
    pub inflight: usize,
    /// Circuit-breaker state name (`closed` / `open` / `half-open`).
    pub breaker: String,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Verdict-driven degradation tier floor in force.
    pub tier_floor: usize,
    /// Replica lifecycle phase (`live` / `down` / `probing`; always
    /// `live` for servers without the fleet recovery subsystem).
    pub lifecycle: String,
    /// Successful replica rejoins so far.
    pub rejoins: u64,
}

impl SystemState {
    /// A zeroed state for monitors running outside a server.
    pub fn idle() -> SystemState {
        SystemState {
            queue_depth: 0,
            queue_capacity: 0,
            inflight: 0,
            breaker: "closed".to_string(),
            breaker_trips: 0,
            tier_floor: 0,
            lifecycle: "live".to_string(),
            rejoins: 0,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_depth", Json::UInt(self.queue_depth as u64)),
            ("queue_capacity", Json::UInt(self.queue_capacity as u64)),
            ("inflight", Json::UInt(self.inflight as u64)),
            ("breaker", Json::Str(self.breaker.clone())),
            ("breaker_trips", Json::UInt(self.breaker_trips)),
            ("tier_floor", Json::UInt(self.tier_floor as u64)),
            ("lifecycle", Json::Str(self.lifecycle.clone())),
            ("rejoins", Json::UInt(self.rejoins)),
        ])
    }

    fn fingerprint(&self) -> [u64; 8] {
        [
            self.queue_depth as u64,
            self.queue_capacity as u64,
            self.inflight as u64,
            hash_str(&self.breaker),
            self.breaker_trips,
            self.tier_floor as u64,
            hash_str(&self.lifecycle),
            self.rejoins,
        ]
    }
}

/// A frozen post-mortem record of one SLO breach.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentSnapshot {
    /// Incident sequence number (0-based, order of occurrence).
    pub seq: u64,
    /// Breach cycle stamp (the triggering window's end boundary).
    pub cycle: u64,
    /// Name of the breached objective.
    pub objective: String,
    /// Fast-span burn rate at the breach.
    pub fast_burn: f64,
    /// Slow-span burn rate at the breach.
    pub slow_burn: f64,
    /// The most recent closed windows (triggering window last).
    pub windows: Vec<WindowStats>,
    /// Recent recorder events, oldest first.
    pub events: Vec<RecEvent>,
    /// Recent finalized-request summaries, oldest first.
    pub spans: Vec<SpanSummary>,
    /// Serving-side state at the breach.
    pub state: SystemState,
}

impl IncidentSnapshot {
    /// Serializes the full snapshot (this is the `incident_<n>.json`
    /// payload).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::UInt(self.seq)),
            ("cycle", Json::UInt(self.cycle)),
            ("objective", Json::Str(self.objective.clone())),
            ("fast_burn", Json::Num(self.fast_burn)),
            ("slow_burn", Json::Num(self.slow_burn)),
            ("windows", Json::Arr(self.windows.iter().map(WindowStats::to_json).collect())),
            ("events", Json::Arr(self.events.iter().map(RecEvent::to_json).collect())),
            ("spans", Json::Arr(self.spans.iter().map(SpanSummary::to_json).collect())),
            ("state", self.state.to_json()),
        ])
    }

    /// Flattens the entire snapshot into `u64`s for bitwise-determinism
    /// assertions.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.seq,
            self.cycle,
            hash_str(&self.objective),
            self.fast_burn.to_bits(),
            self.slow_burn.to_bits(),
        ];
        for w in &self.windows {
            fp.extend(w.fingerprint());
        }
        for e in &self.events {
            fp.extend(e.fingerprint());
        }
        for s in &self.spans {
            fp.extend(s.fingerprint());
        }
        fp.extend(self.state.fingerprint());
        fp
    }

    /// Order-sensitive hash of [`IncidentSnapshot::fingerprint`].
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for w in self.fingerprint() {
            h = fnv1a(h, &w.to_le_bytes());
        }
        h
    }

    /// The request ids of the `k` worst-latency spans in the snapshot
    /// (latency descending, id ascending on ties) — the concrete
    /// requests an incident links as exemplars. Under a deterministic
    /// trace seed the caller can derive each one's trace id
    /// (`TraceId::derive(seed, id)`), tying a breach to specific
    /// entries in the observability event log.
    pub fn exemplar_span_ids(&self, k: usize) -> Vec<u64> {
        let mut ranked: Vec<(u64, u64)> = self.spans.iter().map(|s| (s.latency, s.id)).collect();
        ranked.sort_by_key(|&(latency, id)| (std::cmp::Reverse(latency), id));
        ranked.into_iter().take(k).map(|(_, id)| id).collect()
    }
}

/// Bounded ring buffers plus the frozen incidents.
#[derive(Debug)]
pub struct FlightRecorder {
    events: VecDeque<RecEvent>,
    spans: VecDeque<SpanSummary>,
    windows: VecDeque<WindowStats>,
    event_capacity: usize,
    span_capacity: usize,
    window_capacity: usize,
    incidents: Vec<IncidentSnapshot>,
    max_incidents: usize,
    evict_oldest_incidents: bool,
    frozen_total: u64,
    dropped_incidents: u64,
    evicted_incidents: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `events`/`spans`/`windows` entries
    /// and at most `max_incidents` frozen snapshots.
    pub fn new(
        events: usize,
        spans: usize,
        windows: usize,
        max_incidents: usize,
    ) -> FlightRecorder {
        FlightRecorder {
            events: VecDeque::with_capacity(events),
            spans: VecDeque::with_capacity(spans),
            windows: VecDeque::with_capacity(windows),
            event_capacity: events.max(1),
            span_capacity: spans.max(1),
            window_capacity: windows.max(1),
            incidents: Vec::new(),
            max_incidents,
            evict_oldest_incidents: false,
            frozen_total: 0,
            dropped_incidents: 0,
            evicted_incidents: 0,
        }
    }

    /// Switches the incident cap from drop-newest (the default: breaches
    /// past the cap are counted, not kept) to evict-oldest retention:
    /// the oldest snapshot by virtual clock makes room for the new one,
    /// so the recorder always holds the *latest* `max_incidents`
    /// breaches. Sequence numbers keep counting monotonically either
    /// way.
    pub fn evict_oldest(mut self, on: bool) -> FlightRecorder {
        self.evict_oldest_incidents = on;
        self
    }

    /// Records a point event (evicting the oldest at capacity).
    pub fn push_event(&mut self, cycle: u64, name: &str, detail: String) {
        if self.events.len() == self.event_capacity {
            self.events.pop_front();
        }
        self.events.push_back(RecEvent { cycle, name: name.to_string(), detail });
    }

    /// Records a finalized-request summary.
    pub fn push_span(&mut self, span: SpanSummary) {
        if self.spans.len() == self.span_capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
    }

    /// Records a closed window.
    pub fn push_window(&mut self, w: WindowStats) {
        if self.windows.len() == self.window_capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(w);
    }

    /// Freezes an incident snapshot for a breach `signal`. Returns
    /// whether it was kept: `false` once `max_incidents` is reached in
    /// the default drop-newest mode (the drop is counted, not silent);
    /// in evict-oldest mode ([`FlightRecorder::evict_oldest`]) the
    /// oldest snapshot is evicted instead and the new one is kept.
    pub fn freeze(&mut self, signal: &Signal, state: &SystemState) -> bool {
        if self.incidents.len() >= self.max_incidents {
            if !self.evict_oldest_incidents || self.max_incidents == 0 {
                self.dropped_incidents += 1;
                return false;
            }
            // Incidents are frozen in virtual-clock order, so the front
            // is the oldest.
            self.incidents.remove(0);
            self.evicted_incidents += 1;
        }
        self.incidents.push(IncidentSnapshot {
            seq: self.frozen_total,
            cycle: signal.cycle,
            objective: signal.objective.clone(),
            fast_burn: signal.fast_burn,
            slow_burn: signal.slow_burn,
            windows: self.windows.iter().cloned().collect(),
            events: self.events.iter().cloned().collect(),
            spans: self.spans.iter().cloned().collect(),
            state: state.clone(),
        });
        self.frozen_total += 1;
        true
    }

    /// The frozen incidents, in order of occurrence.
    pub fn incidents(&self) -> &[IncidentSnapshot] {
        &self.incidents
    }

    /// Breaches that arrived after the incident cap was hit.
    pub fn dropped_incidents(&self) -> u64 {
        self.dropped_incidents
    }

    /// Snapshots evicted by the retention cap (evict-oldest mode only).
    pub fn evicted_incidents(&self) -> u64 {
        self.evicted_incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SignalKind;

    fn breach(cycle: u64) -> Signal {
        Signal {
            cycle,
            window: cycle / 100,
            objective: "errors".to_string(),
            kind: SignalKind::Breach,
            fast_burn: 2.0,
            slow_burn: 1.5,
        }
    }

    #[test]
    fn rings_evict_oldest_first() {
        let mut r = FlightRecorder::new(2, 2, 2, 4);
        for c in 0..5 {
            r.push_event(c, "tick", format!("n={c}"));
        }
        r.freeze(&breach(500), &SystemState::idle());
        let inc = &r.incidents()[0];
        let cycles: Vec<u64> = inc.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4], "only the newest survive, oldest first");
    }

    #[test]
    fn exemplar_span_ids_rank_worst_latency_first() {
        let mut r = FlightRecorder::new(8, 8, 8, 4);
        for (id, latency) in [(1u64, 50u64), (2, 900), (3, 900), (4, 10), (5, 400)] {
            r.push_span(SpanSummary {
                id,
                outcome: "completed".to_string(),
                latency,
                attempts: 1,
                finished_at: 1000 + id,
            });
        }
        r.freeze(&breach(1100), &SystemState::idle());
        let inc = &r.incidents()[0];
        // Latency descending, id ascending on the 900-tick tie.
        assert_eq!(inc.exemplar_span_ids(3), vec![2, 3, 5]);
        assert_eq!(inc.exemplar_span_ids(0), Vec::<u64>::new());
        assert_eq!(inc.exemplar_span_ids(99).len(), 5, "k past the ring returns all spans");
    }

    #[test]
    fn incident_cap_counts_drops() {
        let mut r = FlightRecorder::new(2, 2, 2, 1);
        assert!(r.freeze(&breach(100), &SystemState::idle()));
        assert!(!r.freeze(&breach(200), &SystemState::idle()));
        assert_eq!(r.incidents().len(), 1);
        assert_eq!(r.dropped_incidents(), 1);
        assert_eq!(r.evicted_incidents(), 0);
    }

    #[test]
    fn evict_oldest_retention_keeps_the_latest_incidents() {
        let mut r = FlightRecorder::new(2, 2, 2, 2).evict_oldest(true);
        for c in [100, 200, 300, 400] {
            assert!(r.freeze(&breach(c), &SystemState::idle()), "evict-oldest always keeps");
        }
        let kept: Vec<(u64, u64)> = r.incidents().iter().map(|i| (i.seq, i.cycle)).collect();
        assert_eq!(kept, vec![(2, 300), (3, 400)], "oldest-by-clock evicted, seq monotonic");
        assert_eq!(r.evicted_incidents(), 2);
        assert_eq!(r.dropped_incidents(), 0, "evictions are not drops");
    }

    #[test]
    fn snapshot_json_and_digest_cover_the_state() {
        let mut r = FlightRecorder::new(4, 4, 4, 4);
        r.push_event(10, "breaker.trip", "failures=4".to_string());
        r.push_span(SpanSummary {
            id: 7,
            outcome: "failed".to_string(),
            latency: 321,
            attempts: 3,
            finished_at: 90,
        });
        let mut state = SystemState::idle();
        state.queue_depth = 5;
        r.freeze(&breach(100), &state);
        let inc = &r.incidents()[0];
        let json = inc.to_json();
        assert_eq!(json.get("objective").and_then(|j| j.as_str()), Some("errors"));
        assert_eq!(
            json.get("state").and_then(|s| s.get("queue_depth")).and_then(|j| j.as_u64()),
            Some(5)
        );
        let d = inc.digest();
        let mut other = inc.clone();
        other.state.breaker_trips = 1;
        assert_ne!(d, other.digest());
    }
}
