//! Declarative service-level objectives with dual-window burn-rate
//! evaluation.
//!
//! Every objective reduces to the same model: a per-window pair
//! `(bad, total)` and an error *budget* `β` — the bad fraction the
//! objective tolerates. The **burn rate** over a span of windows is
//!
//! ```text
//! burn = (Σ bad / Σ total) / β        (0 when Σ total = 0)
//! ```
//!
//! so `burn = 1` means the system is consuming its budget exactly as
//! fast as the objective allows, and `burn = 10` means ten times too
//! fast. Following the SRE dual-window alerting recipe, an objective
//! **breaches** only when both a short span (`fast_windows`, catches the
//! onset quickly) and a long span (`slow_windows`, rejects blips) burn
//! at or above `burn_threshold`. A breached objective **recovers**
//! after `recover_windows` consecutive windows whose single-window burn
//! is below the threshold.
//!
//! All arithmetic is integer counts combined in a fixed order, so
//! verdicts and their cycle stamps are bitwise reproducible at any
//! `SC_THREADS`.

use std::collections::VecDeque;

use crate::window::WindowStats;
use crate::{fnv1a, hash_str, FNV_OFFSET};

/// What an [`Objective`] constrains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveKind {
    /// Fraction of finalized requests that complete must be ≥ `min`
    /// (budget `β = 1 − min`; bad = finalized − completed).
    GoodputAtLeast {
        /// Minimum acceptable goodput in `[0, 1)`.
        min: f64,
    },
    /// Windowed p99 completion latency must be ≤ `cycles`. Evaluated as
    /// "at most 1% of completions over the limit" (budget `β = 0.01`;
    /// bad = completions over `cycles`), which is the same statement in
    /// burn-rate form.
    P99AtMost {
        /// Latency limit in virtual cycles.
        cycles: u64,
    },
    /// Fraction of finalized requests failed by the backend path
    /// (retries exhausted or breaker fail-fast) must be ≤ `max`
    /// (budget `β = max`; bad = errors).
    ErrorRateAtMost {
        /// Maximum acceptable error rate in `(0, 1]`.
        max: f64,
    },
}

impl ObjectiveKind {
    /// The error budget `β` (tolerated bad fraction).
    pub fn budget(&self) -> f64 {
        match *self {
            ObjectiveKind::GoodputAtLeast { min } => 1.0 - min,
            ObjectiveKind::P99AtMost { .. } => 0.01,
            ObjectiveKind::ErrorRateAtMost { max } => max,
        }
    }

    /// Short machine label (`goodput` / `p99` / `error_rate`).
    pub fn label(&self) -> &'static str {
        match self {
            ObjectiveKind::GoodputAtLeast { .. } => "goodput",
            ObjectiveKind::P99AtMost { .. } => "p99",
            ObjectiveKind::ErrorRateAtMost { .. } => "error_rate",
        }
    }

    /// Human-readable constraint (`goodput >= 0.9`, `p99 <= 4096`, …).
    pub fn describe(&self) -> String {
        match *self {
            ObjectiveKind::GoodputAtLeast { min } => format!("goodput >= {min}"),
            ObjectiveKind::P99AtMost { cycles } => format!("p99 <= {cycles}"),
            ObjectiveKind::ErrorRateAtMost { max } => format!("error_rate <= {max}"),
        }
    }

    /// The `(bad, total)` pair this objective reads from a window.
    /// `slot` is the objective's index into `over_limit`.
    pub fn bad_total(&self, w: &WindowStats, slot: usize) -> (u64, u64) {
        match self {
            ObjectiveKind::GoodputAtLeast { .. } => (w.finalized - w.completed, w.finalized),
            ObjectiveKind::P99AtMost { .. } => (w.over_limit[slot], w.completed),
            ObjectiveKind::ErrorRateAtMost { .. } => (w.errors, w.finalized),
        }
    }
}

/// One declarative objective plus its burn-rate alerting parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Objective name (used in signals, incidents, and reports).
    pub name: String,
    /// The constraint.
    pub kind: ObjectiveKind,
    /// Short span: windows in the fast burn-rate average.
    pub fast_windows: usize,
    /// Long span: windows in the slow burn-rate average.
    pub slow_windows: usize,
    /// Breach when both spans burn at or above this rate.
    pub burn_threshold: f64,
    /// Consecutive sub-threshold windows required to recover.
    pub recover_windows: usize,
}

impl Objective {
    /// An objective with the default alerting shape: fast span 3,
    /// slow span 12, threshold 1.0, recovery after 3 green windows.
    pub fn new(name: &str, kind: ObjectiveKind) -> Objective {
        Objective {
            name: name.to_string(),
            kind,
            fast_windows: 3,
            slow_windows: 12,
            burn_threshold: 1.0,
            recover_windows: 3,
        }
    }

    /// `goodput ≥ min` with the default alerting shape.
    pub fn goodput(name: &str, min: f64) -> Objective {
        Objective::new(name, ObjectiveKind::GoodputAtLeast { min })
    }

    /// `p99 ≤ cycles` with the default alerting shape.
    pub fn p99(name: &str, cycles: u64) -> Objective {
        Objective::new(name, ObjectiveKind::P99AtMost { cycles })
    }

    /// `error-rate ≤ max` with the default alerting shape.
    pub fn error_rate(name: &str, max: f64) -> Objective {
        Objective::new(name, ObjectiveKind::ErrorRateAtMost { max })
    }

    /// Overrides the fast/slow span widths.
    pub fn with_spans(mut self, fast: usize, slow: usize) -> Objective {
        self.fast_windows = fast;
        self.slow_windows = slow;
        self
    }

    /// Overrides the burn threshold.
    pub fn with_threshold(mut self, t: f64) -> Objective {
        self.burn_threshold = t;
        self
    }

    /// Overrides the recovery streak length.
    pub fn with_recovery(mut self, windows: usize) -> Objective {
        self.recover_windows = windows;
        self
    }

    /// Panics unless the objective is well-formed — the asserting form
    /// of [`Objective::validated`], for statically-known objectives.
    pub fn validate(&self) {
        if let Err(e) = self.validated() {
            panic!("{e}");
        }
    }

    /// Checks that the objective is well-formed: positive budget,
    /// `1 ≤ fast ≤ slow`, positive threshold and recovery streak.
    ///
    /// # Errors
    ///
    /// Returns [`sc_core::Error::InvalidConfig`] naming the objective
    /// and the violated rule, so user-supplied SLO configs surface as
    /// errors instead of panics.
    pub fn validated(&self) -> Result<(), sc_core::Error> {
        let invalid = |reason: String| sc_core::Error::InvalidConfig {
            what: format!("SLO objective {:?}", self.name),
            reason,
        };
        let budget = self.kind.budget();
        if budget.is_nan() || budget <= 0.0 {
            return Err(invalid("zero error budget".to_string()));
        }
        if self.fast_windows < 1 {
            return Err(invalid("fast span must be >= 1".to_string()));
        }
        if self.fast_windows > self.slow_windows {
            return Err(invalid("fast span wider than slow span".to_string()));
        }
        if self.burn_threshold.is_nan() || self.burn_threshold <= 0.0 {
            return Err(invalid("non-positive threshold".to_string()));
        }
        if self.recover_windows < 1 {
            return Err(invalid("recovery streak must be >= 1".to_string()));
        }
        Ok(())
    }
}

/// Health verdict of one objective (or the whole system: the worst
/// objective wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Burning below threshold on the fast span.
    Green,
    /// Fast span at/over threshold but slow span still under: budget is
    /// burning, not yet a breach.
    Burning,
    /// Both spans at/over threshold (until recovery).
    Breached,
}

impl Verdict {
    /// Lowercase label used in JSON and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Green => "green",
            Verdict::Burning => "burning",
            Verdict::Breached => "breached",
        }
    }
}

/// What a [`Signal`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Objective entered `Breached`.
    Breach,
    /// Objective left `Breached` after a sustained green streak.
    Recover,
}

/// A breach/recover edge, stamped with the closing window's end cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Virtual cycle of the window boundary that triggered the edge.
    pub cycle: u64,
    /// Index of the window whose close triggered the edge.
    pub window: u64,
    /// Objective name.
    pub objective: String,
    /// Edge direction.
    pub kind: SignalKind,
    /// Fast-span burn rate at the edge.
    pub fast_burn: f64,
    /// Slow-span burn rate at the edge.
    pub slow_burn: f64,
}

impl Signal {
    /// Serializes to JSON.
    pub fn to_json(&self) -> sc_telemetry::json::Json {
        use sc_telemetry::json::Json;
        Json::obj(vec![
            ("cycle", Json::UInt(self.cycle)),
            ("window", Json::UInt(self.window)),
            ("objective", Json::Str(self.objective.clone())),
            (
                "kind",
                Json::Str(
                    match self.kind {
                        SignalKind::Breach => "breach",
                        SignalKind::Recover => "recover",
                    }
                    .to_string(),
                ),
            ),
            ("fast_burn", Json::Num(self.fast_burn)),
            ("slow_burn", Json::Num(self.slow_burn)),
        ])
    }

    /// Flattens into `u64`s for determinism assertions.
    pub fn fingerprint(&self) -> Vec<u64> {
        vec![
            self.cycle,
            self.window,
            hash_str(&self.objective),
            matches!(self.kind, SignalKind::Breach) as u64,
            self.fast_burn.to_bits(),
            self.slow_burn.to_bits(),
        ]
    }
}

/// Running burn-rate evaluation state for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveState {
    objective: Objective,
    slot: usize,
    /// Last `slow_windows` per-window `(bad, total)` pairs.
    history: VecDeque<(u64, u64)>,
    verdict: Verdict,
    green_streak: usize,
    breaches: u64,
    recoveries: u64,
    breached_windows: u64,
    worst_fast_burn: f64,
    last_fast_burn: f64,
    last_slow_burn: f64,
}

impl ObjectiveState {
    /// Fresh state for `objective`, reading over-limit slot `slot`.
    pub fn new(objective: Objective, slot: usize) -> ObjectiveState {
        objective.validate();
        ObjectiveState {
            objective,
            slot,
            history: VecDeque::new(),
            verdict: Verdict::Green,
            green_streak: 0,
            breaches: 0,
            recoveries: 0,
            breached_windows: 0,
            worst_fast_burn: 0.0,
            last_fast_burn: 0.0,
            last_slow_burn: 0.0,
        }
    }

    /// The objective under evaluation.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Current verdict.
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// Breach edges so far.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Recovery edges so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Closed windows spent in `Breached`.
    pub fn breached_windows(&self) -> u64 {
        self.breached_windows
    }

    /// Largest fast-span burn observed.
    pub fn worst_fast_burn(&self) -> f64 {
        self.worst_fast_burn
    }

    /// Most recent `(fast, slow)` burn rates.
    pub fn burns(&self) -> (f64, f64) {
        (self.last_fast_burn, self.last_slow_burn)
    }

    fn burn_over(&self, span: usize) -> f64 {
        let (mut bad, mut total) = (0u64, 0u64);
        for &(b, t) in self.history.iter().rev().take(span) {
            bad += b;
            total += t;
        }
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / self.objective.kind.budget()
        }
    }

    /// Feeds one closed window; returns the breach/recover edge it
    /// caused, if any. Partial windows must not be fed.
    pub fn observe(&mut self, w: &WindowStats) -> Option<Signal> {
        let pair = self.objective.kind.bad_total(w, self.slot);
        self.history.push_back(pair);
        while self.history.len() > self.objective.slow_windows {
            self.history.pop_front();
        }
        let fast = self.burn_over(self.objective.fast_windows);
        let slow = self.burn_over(self.objective.slow_windows);
        self.last_fast_burn = fast;
        self.last_slow_burn = slow;
        if fast > self.worst_fast_burn {
            self.worst_fast_burn = fast;
        }
        let t = self.objective.burn_threshold;
        let signal = |kind| Signal {
            cycle: w.end,
            window: w.index,
            objective: self.objective.name.clone(),
            kind,
            fast_burn: fast,
            slow_burn: slow,
        };
        match self.verdict {
            Verdict::Breached => {
                self.breached_windows += 1;
                // Recovery watches the single-window burn: the spans
                // that declared the breach stay contaminated for up to
                // `slow_windows` after the incident clears.
                let one = match pair {
                    (_, 0) => 0.0,
                    (b, tot) => (b as f64 / tot as f64) / self.objective.kind.budget(),
                };
                if one < t {
                    self.green_streak += 1;
                } else {
                    self.green_streak = 0;
                }
                if self.green_streak >= self.objective.recover_windows {
                    self.verdict = Verdict::Green;
                    self.green_streak = 0;
                    self.recoveries += 1;
                    return Some(signal(SignalKind::Recover));
                }
                None
            }
            _ => {
                if fast >= t && slow >= t {
                    self.verdict = Verdict::Breached;
                    self.green_streak = 0;
                    self.breaches += 1;
                    self.breached_windows += 1;
                    Some(signal(SignalKind::Breach))
                } else {
                    self.verdict = if fast >= t { Verdict::Burning } else { Verdict::Green };
                    None
                }
            }
        }
    }

    /// Serializes the objective's end-of-run summary to JSON.
    pub fn summary_json(&self) -> sc_telemetry::json::Json {
        use sc_telemetry::json::Json;
        Json::obj(vec![
            ("name", Json::Str(self.objective.name.clone())),
            ("constraint", Json::Str(self.objective.kind.describe())),
            ("budget", Json::Num(self.objective.kind.budget())),
            ("fast_windows", Json::UInt(self.objective.fast_windows as u64)),
            ("slow_windows", Json::UInt(self.objective.slow_windows as u64)),
            ("burn_threshold", Json::Num(self.objective.burn_threshold)),
            ("verdict", Json::Str(self.verdict.label().to_string())),
            ("breaches", Json::UInt(self.breaches)),
            ("recoveries", Json::UInt(self.recoveries)),
            ("breached_windows", Json::UInt(self.breached_windows)),
            ("worst_fast_burn", Json::Num(self.worst_fast_burn)),
        ])
    }

    /// Flattens into `u64`s for determinism assertions.
    pub fn fingerprint(&self) -> Vec<u64> {
        vec![
            hash_str(&self.objective.name),
            hash_str(self.objective.kind.label()),
            self.verdict as u64,
            self.breaches,
            self.recoveries,
            self.breached_windows,
            self.worst_fast_burn.to_bits(),
        ]
    }
}

/// Order-sensitive digest of a slice of fingerprints (test helper).
pub fn digest(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h = fnv1a(h, &w.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, finalized: u64, completed: u64, errors: u64) -> WindowStats {
        WindowStats {
            index,
            start: index * 100,
            end: (index + 1) * 100,
            partial: false,
            finalized,
            completed,
            degraded: 0,
            shed: finalized - completed - errors,
            timed_out: 0,
            errors,
            over_limit: vec![0],
            p50: 10,
            p90: 20,
            p99: 30,
            max_latency: 30,
            latency_sum: completed * 10,
        }
    }

    #[test]
    fn budgets_follow_the_unified_model() {
        assert!((ObjectiveKind::GoodputAtLeast { min: 0.9 }.budget() - 0.1).abs() < 1e-12);
        assert!((ObjectiveKind::P99AtMost { cycles: 100 }.budget() - 0.01).abs() < 1e-12);
        assert!((ObjectiveKind::ErrorRateAtMost { max: 0.05 }.budget() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero error budget")]
    fn perfect_goodput_objective_is_rejected() {
        Objective::goodput("impossible", 1.0).validate();
    }

    #[test]
    fn breach_requires_both_spans_over_threshold() {
        // fast 1 / slow 3: a single bad window trips the fast span but
        // the slow span still averages below threshold.
        let mut s = ObjectiveState::new(
            Objective::error_rate("errors", 0.1).with_spans(1, 3).with_recovery(2),
            0,
        );
        assert!(s.observe(&window(0, 100, 100, 0)).is_none());
        assert!(s.observe(&window(1, 100, 100, 0)).is_none());
        // One window at 30% errors: fast burn 3.0, slow burn 1.0 → both
        // at threshold... make slow still under: errors=21 → slow =
        // (21/300)/0.1 = 0.7, fast = (21/100)/0.1 = 2.1.
        assert!(s.observe(&window(2, 100, 79, 21)).is_none());
        assert_eq!(s.verdict(), Verdict::Burning);
        // Sustained: slow span catches up and the objective breaches.
        let sig = s.observe(&window(3, 100, 60, 40)).expect("sustained burn must breach");
        assert_eq!(sig.kind, SignalKind::Breach);
        assert_eq!(sig.cycle, 400, "stamped with the closing window boundary");
        assert_eq!(s.verdict(), Verdict::Breached);
        assert_eq!(s.breaches(), 1);
        // Recovery needs two consecutive green windows.
        assert!(s.observe(&window(4, 100, 100, 0)).is_none());
        let rec = s.observe(&window(5, 100, 100, 0)).expect("green streak must recover");
        assert_eq!(rec.kind, SignalKind::Recover);
        assert_eq!(s.verdict(), Verdict::Green);
        assert_eq!(s.recoveries(), 1);
    }

    #[test]
    fn empty_windows_burn_nothing_and_count_toward_recovery() {
        let mut s = ObjectiveState::new(
            Objective::error_rate("errors", 0.1).with_spans(1, 1).with_recovery(1),
            0,
        );
        let sig = s.observe(&window(0, 10, 0, 10)).expect("total burn must breach");
        assert_eq!(sig.kind, SignalKind::Breach);
        // An idle window has burn 0: green, recovers the objective.
        let rec = s.observe(&window(1, 0, 0, 0)).expect("idle window is green");
        assert_eq!(rec.kind, SignalKind::Recover);
    }

    #[test]
    fn p99_objective_reads_its_over_limit_slot() {
        let mut s =
            ObjectiveState::new(Objective::p99("latency", 30).with_spans(1, 1).with_recovery(1), 0);
        let mut w = window(0, 100, 100, 0);
        w.over_limit[0] = 5; // 5% of completions over the limit: burn 5.0
        assert_eq!(s.observe(&w).map(|sig| sig.kind), Some(SignalKind::Breach));
        let (fast, _) = s.burns();
        assert!((fast - 5.0).abs() < 1e-12);
    }

    #[test]
    fn goodput_counts_all_non_completions_as_bad() {
        let mut s = ObjectiveState::new(
            Objective::goodput("goodput", 0.8).with_spans(1, 1).with_recovery(1),
            0,
        );
        // 70% goodput on a 20% budget: burn (30/100)/0.2 = 1.5.
        assert!(s.observe(&window(0, 100, 70, 10)).is_some());
        assert!((s.worst_fast_burn() - 1.5).abs() < 1e-12);
    }
}
