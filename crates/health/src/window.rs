//! Tumbling-window accumulation on the virtual cycle clock.
//!
//! Window `k` covers virtual cycles `[k·W, (k+1)·W)` for a fixed width
//! `W`, so boundaries are pure functions of cycle time: any two runs
//! that process the same event stream produce the same window series,
//! bit for bit, regardless of `SC_THREADS`. The monitor closes every
//! window whose end is `≤ now` *before* recording events at `now`, so
//! an event on a boundary always lands in the window that starts there.
//!
//! Latency inside a window goes into a private log2-bucket histogram
//! (fresh per window — quantiles are *windowed*, not cumulative), and
//! the frozen [`WindowStats`] carries nearest-rank p50/p90/p99 derived
//! from it via [`HistogramSnapshot::quantile`].

use sc_telemetry::metrics::{log2_bounds, HistogramSnapshot};

use crate::fnv1a;

/// One closed (or final-partial) window's outcome counts and latency
/// quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index `k` (window covers `[k·W, (k+1)·W)`).
    pub index: u64,
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Whether this is the trailing partial window flushed at `finish`
    /// (partial windows are reported but never SLO-evaluated).
    pub partial: bool,
    /// Requests finalized in the window (any outcome).
    pub finalized: u64,
    /// Completions (any tier).
    pub completed: u64,
    /// Completions at a degraded tier (tier ≥ 1).
    pub degraded: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests whose deadline expired.
    pub timed_out: u64,
    /// Backend-caused failures (retry budget exhausted or breaker
    /// fail-fast).
    pub errors: u64,
    /// Per-objective count of completions over the objective's latency
    /// limit (slots for non-latency objectives stay 0).
    pub over_limit: Vec<u64>,
    /// Windowed median completion latency (0 when nothing completed).
    pub p50: u64,
    /// Windowed 90th-percentile completion latency.
    pub p90: u64,
    /// Windowed 99th-percentile completion latency.
    pub p99: u64,
    /// Largest completion latency in the window.
    pub max_latency: u64,
    /// Sum of completion latencies in the window.
    pub latency_sum: u64,
}

impl WindowStats {
    /// Bad-event rate helper: `bad / finalized` (0 on an empty window).
    pub fn rate(&self, bad: u64) -> f64 {
        if self.finalized == 0 {
            0.0
        } else {
            bad as f64 / self.finalized as f64
        }
    }

    /// Serializes to JSON (scalars only; the raw buckets stay
    /// in-memory).
    pub fn to_json(&self) -> sc_telemetry::json::Json {
        use sc_telemetry::json::Json;
        Json::obj(vec![
            ("index", Json::UInt(self.index)),
            ("start", Json::UInt(self.start)),
            ("end", Json::UInt(self.end)),
            ("partial", Json::Bool(self.partial)),
            ("finalized", Json::UInt(self.finalized)),
            ("completed", Json::UInt(self.completed)),
            ("degraded", Json::UInt(self.degraded)),
            ("shed", Json::UInt(self.shed)),
            ("timed_out", Json::UInt(self.timed_out)),
            ("errors", Json::UInt(self.errors)),
            ("over_limit", Json::Arr(self.over_limit.iter().map(|&v| Json::UInt(v)).collect())),
            ("p50", Json::UInt(self.p50)),
            ("p90", Json::UInt(self.p90)),
            ("p99", Json::UInt(self.p99)),
            ("max_latency", Json::UInt(self.max_latency)),
            ("latency_sum", Json::UInt(self.latency_sum)),
        ])
    }

    /// Flattens every field into `u64`s for bitwise-determinism
    /// assertions.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.index,
            self.start,
            self.end,
            self.partial as u64,
            self.finalized,
            self.completed,
            self.degraded,
            self.shed,
            self.timed_out,
            self.errors,
            self.p50,
            self.p90,
            self.p99,
            self.max_latency,
            self.latency_sum,
        ];
        fp.extend(self.over_limit.iter().copied());
        fp
    }

    /// Order-sensitive hash of [`WindowStats::fingerprint`].
    pub fn digest(&self) -> u64 {
        let mut h = crate::FNV_OFFSET;
        for w in self.fingerprint() {
            h = fnv1a(h, &w.to_le_bytes());
        }
        h
    }
}

/// The open window the monitor is currently accumulating into.
#[derive(Debug)]
pub(crate) struct WindowAccum {
    index: u64,
    width: u64,
    finalized: u64,
    completed: u64,
    degraded: u64,
    shed: u64,
    timed_out: u64,
    errors: u64,
    over_limit: Vec<u64>,
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl WindowAccum {
    /// Opens window `index` of width `width` with `slots` per-objective
    /// over-limit counters.
    pub(crate) fn new(index: u64, width: u64, slots: usize) -> WindowAccum {
        let bounds = log2_bounds(32);
        let buckets = vec![0u64; bounds.len() + 1];
        WindowAccum {
            index,
            width,
            finalized: 0,
            completed: 0,
            degraded: 0,
            shed: 0,
            timed_out: 0,
            errors: 0,
            over_limit: vec![0; slots],
            bounds,
            buckets,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// One past the last cycle this window covers.
    pub(crate) fn end(&self) -> u64 {
        (self.index + 1).saturating_mul(self.width)
    }

    pub(crate) fn index(&self) -> u64 {
        self.index
    }

    pub(crate) fn note_completed(&mut self, latency: u64, degraded: bool) {
        self.finalized += 1;
        self.completed += 1;
        if degraded {
            self.degraded += 1;
        }
        let idx = self.bounds.partition_point(|&b| b < latency);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    pub(crate) fn note_shed(&mut self) {
        self.finalized += 1;
        self.shed += 1;
    }

    pub(crate) fn note_timed_out(&mut self) {
        self.finalized += 1;
        self.timed_out += 1;
    }

    pub(crate) fn note_error(&mut self) {
        self.finalized += 1;
        self.errors += 1;
    }

    pub(crate) fn note_over_limit(&mut self, slot: usize) {
        self.over_limit[slot] += 1;
    }

    /// Whether anything was recorded.
    pub(crate) fn is_empty(&self) -> bool {
        self.finalized == 0
    }

    /// Freezes into a [`WindowStats`], deriving windowed quantiles.
    pub(crate) fn freeze(&self, partial: bool) -> WindowStats {
        let snap = HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        };
        WindowStats {
            index: self.index,
            start: self.index.saturating_mul(self.width),
            end: self.end(),
            partial,
            finalized: self.finalized,
            completed: self.completed,
            degraded: self.degraded,
            shed: self.shed,
            timed_out: self.timed_out,
            errors: self.errors,
            over_limit: self.over_limit.clone(),
            p50: snap.p50(),
            p90: snap.p90(),
            p99: snap.p99(),
            max_latency: self.max,
            latency_sum: self.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_pure_functions_of_the_index() {
        let w = WindowAccum::new(3, 1000, 2);
        let s = w.freeze(false);
        assert_eq!((s.start, s.end), (3000, 4000));
        assert!(!s.partial);
        assert_eq!(s.over_limit, vec![0, 0]);
    }

    #[test]
    fn windowed_quantiles_reflect_only_this_window() {
        let mut w = WindowAccum::new(0, 100, 0);
        for lat in [10, 10, 12, 900] {
            w.note_completed(lat, false);
        }
        w.note_shed();
        w.note_error();
        let s = w.freeze(false);
        assert_eq!(s.finalized, 6);
        assert_eq!(s.completed, 4);
        assert_eq!((s.shed, s.errors), (1, 1));
        // Log2 nearest-rank: median of {10,10,12,900} lands in (8,16].
        assert_eq!(s.p50, 16);
        assert_eq!(s.p99, 900, "top rank clamps to the window max");
        assert_eq!(s.max_latency, 900);
        assert_eq!(s.latency_sum, 932);
        assert!((s.rate(s.completed) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_freezes_to_zeros() {
        let w = WindowAccum::new(5, 64, 1);
        assert!(w.is_empty());
        let s = w.freeze(true);
        assert!(s.partial);
        assert_eq!((s.finalized, s.p50, s.p99, s.max_latency), (0, 0, 0, 0));
        assert_eq!(s.rate(0), 0.0);
    }

    #[test]
    fn fingerprint_changes_with_any_field() {
        let mut w = WindowAccum::new(0, 10, 1);
        w.note_completed(3, true);
        let a = w.freeze(false);
        let mut b = a.clone();
        b.over_limit[0] = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.digest(), b.digest());
    }
}
