//! Deterministic causal tracing on the virtual cycle clock.
//!
//! Wall-clock tracing ([`crate::span`]) answers "what is the process
//! doing right now"; this module answers "where did this request's
//! *cycles* go". A [`SpanTree`] is an explicit, data-first span tree on
//! the virtual clock: the serving layer mints a [`TraceId`] per request
//! at admission and builds the tree as the request moves through queue
//! wait, backoff, breaker decisions, failed attempts, and backend
//! service; the accelerator contributes per-tile breakdowns through
//! [`BackendProfile`].
//!
//! Identifiers carry **no wall clock and no thread identity**:
//! [`TraceId::derive`] mixes only the configured trace seed and the
//! request id, and span ids mix the trace id, the span's name, and its
//! insertion index. Two runs of the same workload therefore produce
//! bitwise-identical trees at any `SC_THREADS` — the property the
//! determinism suite asserts.
//!
//! ## The attribution invariant
//!
//! A well-formed tree ([`SpanTree::validate`]) tiles every parent span
//! *exactly* with its children: siblings are chronological, gap-free,
//! and end where the parent ends. Leaf spans therefore partition the
//! root, so [`SpanTree::attribution`] — leaf cycles bucketed by
//! [`CycleCategory`] — sums to the root's duration with no lost or
//! double-counted cycles. The serving layer asserts this per request.

use std::sync::OnceLock;

use crate::metrics::{counter, Counter};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective avalanche over `u64`. Hand-rolled
/// here (rather than borrowed from `sc-fault`) because `sc-telemetry`
/// sits below every other crate and must stay dependency-free. Shared
/// with [`crate::obs`], whose reservoir/exemplar draws use the same
/// counter-keyed discipline.
pub(crate) fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site/span name: stable, order-sensitive, no allocation.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Identity of one causal trace (= one request's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the trace id for `request_id` under `seed` — a pure
    /// function of its inputs, so re-running a workload reproduces every
    /// id bitwise.
    pub fn derive(seed: u64, request_id: u64) -> TraceId {
        TraceId(split_mix(seed ^ split_mix(request_id ^ GOLDEN)))
    }
}

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Derives a span id from the owning trace, the span name, and the
    /// span's insertion index within the tree.
    pub fn derive(trace: TraceId, name: &str, seq: u64) -> SpanId {
        SpanId(split_mix(trace.0 ^ fnv1a(name) ^ seq.wrapping_mul(GOLDEN)))
    }
}

/// Where a span's cycles belong. Structural categories group; the rest
/// are the attribution buckets the profiler sums over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleCategory {
    /// Structural root: one request, admission to finalization.
    Request,
    /// Waiting in the admission queue for the backend.
    QueueWait,
    /// Waiting out a retry backoff gate.
    BackoffWait,
    /// A circuit-breaker fail-fast decision (zero-length marker).
    Breaker,
    /// A failed backend attempt burning its fault-detection latency.
    FailureDetect,
    /// Structural: one successful backend dispatch window.
    Service,
    /// Structural: one layer inside a service window.
    Layer,
    /// Structural: one tile inside a layer.
    Tile,
    /// SNG/FSM stream generation + up/down counting — the MAC-stream
    /// execution proper (generation and counting share each cycle in
    /// both datapaths, so they are one bucket).
    MacStream,
    /// DMR recompute-and-compare verification replicas.
    DmrVerify,
    /// Truncated-stream (EDT) degraded recompute after retry exhaustion.
    EdtRecompute,
    /// Parity scrub-on-read repairs. Billed zero cycles in this model —
    /// the scrub rides the SRAM read port — but kept in the taxonomy so
    /// the accounting is explicit about it.
    ParityScrub,
    /// Replica cycles burned on the losing side of a hedged request (or
    /// on a superseded attempt's overlap with its adopter). Concurrent
    /// with the foreground timeline: these spans sit *beside* the
    /// critical path, so a request's attribution sums to
    /// `latency + hedge_wasted`.
    HedgeWasted,
    /// Cycles a request spent stranded on a crashed replica before the
    /// recovery subsystem replayed it onto a live one. Concurrent with
    /// the foreground timeline for the same reason as
    /// [`CycleCategory::HedgeWasted`]: the stranded window overlaps the
    /// request's own queue-wait accounting, so it sits beside the
    /// critical path and the identity
    /// `total() == latency + concurrent_total()` still holds exactly.
    RecoveryReplay,
}

impl CycleCategory {
    /// Every category, in stable `code()` order.
    pub const ALL: [CycleCategory; 14] = [
        CycleCategory::Request,
        CycleCategory::QueueWait,
        CycleCategory::BackoffWait,
        CycleCategory::Breaker,
        CycleCategory::FailureDetect,
        CycleCategory::Service,
        CycleCategory::Layer,
        CycleCategory::Tile,
        CycleCategory::MacStream,
        CycleCategory::DmrVerify,
        CycleCategory::EdtRecompute,
        CycleCategory::ParityScrub,
        CycleCategory::HedgeWasted,
        CycleCategory::RecoveryReplay,
    ];

    /// Stable small code (the index in [`CycleCategory::ALL`]).
    pub fn code(self) -> u64 {
        CycleCategory::ALL.iter().position(|&c| c == self).expect("category in ALL") as u64
    }

    /// Short name used in counters, Chrome-trace `cat` fields, and
    /// manifests.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Request => "request",
            CycleCategory::QueueWait => "queue_wait",
            CycleCategory::BackoffWait => "backoff_wait",
            CycleCategory::Breaker => "breaker",
            CycleCategory::FailureDetect => "failure_detect",
            CycleCategory::Service => "service",
            CycleCategory::Layer => "layer",
            CycleCategory::Tile => "tile",
            CycleCategory::MacStream => "mac_stream",
            CycleCategory::DmrVerify => "dmr_verify",
            CycleCategory::EdtRecompute => "edt_recompute",
            CycleCategory::ParityScrub => "parity_scrub",
            CycleCategory::HedgeWasted => "hedge_wasted",
            CycleCategory::RecoveryReplay => "recovery_replay",
        }
    }

    /// Whether the category only groups children (its own cycles live in
    /// its leaves).
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            CycleCategory::Request
                | CycleCategory::Service
                | CycleCategory::Layer
                | CycleCategory::Tile
        )
    }

    /// Whether spans of this category run *concurrently* with the
    /// foreground timeline (a hedge racing the primary attempt). A
    /// concurrent child is exempt from the contiguous-tiling check —
    /// it only has to lie within its parent's bounds — and its cycles
    /// land *on top of* the foreground attribution.
    pub fn is_concurrent(self) -> bool {
        matches!(self, CycleCategory::HedgeWasted | CycleCategory::RecoveryReplay)
    }
}

/// Cycles bucketed by [`CycleCategory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleAttribution {
    counts: [u64; CycleCategory::ALL.len()],
}

impl CycleAttribution {
    /// The all-zero attribution.
    pub fn new() -> CycleAttribution {
        CycleAttribution::default()
    }

    /// Adds `cycles` to `category`.
    pub fn add(&mut self, category: CycleCategory, cycles: u64) {
        self.counts[category.code() as usize] += cycles;
    }

    /// Cycles attributed to `category`.
    pub fn get(&self, category: CycleCategory) -> u64 {
        self.counts[category.code() as usize]
    }

    /// Total attributed cycles across every bucket.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cycles in concurrent buckets ([`CycleCategory::is_concurrent`])
    /// — the shadow work beside the critical path. For a well-formed
    /// request trace, `total() == latency + concurrent_total()`.
    pub fn concurrent_total(&self) -> u64 {
        CycleCategory::ALL.iter().filter(|c| c.is_concurrent()).map(|&c| self.get(c)).sum()
    }

    /// Folds another attribution into this one.
    pub fn merge(&mut self, other: &CycleAttribution) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates the non-zero buckets in stable category order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCategory, u64)> + '_ {
        CycleCategory::ALL.iter().map(move |&c| (c, self.get(c))).filter(|&(_, cycles)| cycles > 0)
    }

    /// Flat form for fingerprints.
    pub fn fingerprint(&self) -> Vec<u64> {
        self.counts.to_vec()
    }
}

/// One span on the virtual cycle clock: `[start, end)` half-open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSpan {
    /// Deterministic span identity.
    pub id: SpanId,
    /// Parent span (`None` only for the root).
    pub parent: Option<SpanId>,
    /// Display name (low-cardinality; ids go in trace-event args).
    pub name: String,
    /// Attribution/category tag.
    pub category: CycleCategory,
    /// First cycle covered.
    pub start: u64,
    /// One past the last cycle covered (`end == start` is a zero-length
    /// marker, e.g. a breaker rejection).
    pub end: u64,
}

impl CycleSpan {
    /// The span's duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A complete request trace: a root span plus nested children, stored in
/// insertion (= chronological) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    trace: TraceId,
    spans: Vec<CycleSpan>,
}

impl SpanTree {
    /// A tree holding just the root span.
    pub fn new(
        trace: TraceId,
        name: impl Into<String>,
        category: CycleCategory,
        start: u64,
        end: u64,
    ) -> SpanTree {
        let name = name.into();
        let id = SpanId::derive(trace, &name, 0);
        SpanTree { trace, spans: vec![CycleSpan { id, parent: None, name, category, start, end }] }
    }

    /// The owning trace id.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// The root span.
    pub fn root(&self) -> &CycleSpan {
        &self.spans[0]
    }

    /// Every span, insertion-ordered (root first; children chronological
    /// under each parent).
    pub fn spans(&self) -> &[CycleSpan] {
        &self.spans
    }

    /// Appends a child of `parent` covering `[start, end)` and returns
    /// its id — the asserting form of [`SpanTree::try_add`], for
    /// statically-known parents.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the tree.
    pub fn add(
        &mut self,
        parent: SpanId,
        name: impl Into<String>,
        category: CycleCategory,
        start: u64,
        end: u64,
    ) -> SpanId {
        match self.try_add(parent, name, category, start, end) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Appends a child of `parent` covering `[start, end)` and returns
    /// its id.
    ///
    /// # Errors
    ///
    /// Returns a description naming the missing parent if `parent` is
    /// not in the tree, so externally-assembled trees surface bad span
    /// references as errors instead of panics.
    pub fn try_add(
        &mut self,
        parent: SpanId,
        name: impl Into<String>,
        category: CycleCategory,
        start: u64,
        end: u64,
    ) -> Result<SpanId, String> {
        let name = name.into();
        if !self.spans.iter().any(|s| s.id == parent) {
            return Err(format!(
                "parent span {:?} of {:?} does not exist in trace {:?}",
                parent, name, self.trace
            ));
        }
        let id = SpanId::derive(self.trace, &name, self.spans.len() as u64);
        self.spans.push(CycleSpan { id, parent: Some(parent), name, category, start, end });
        Ok(id)
    }

    /// The direct children of `id`, in insertion order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &CycleSpan> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Root duration.
    pub fn total_cycles(&self) -> u64 {
        self.root().cycles()
    }

    /// Sum of leaf-span durations — the cycles the tree explains.
    pub fn leaf_cycles(&self) -> u64 {
        self.leaves().map(CycleSpan::cycles).sum()
    }

    /// Leaf cycles bucketed by category.
    pub fn attribution(&self) -> CycleAttribution {
        let mut attr = CycleAttribution::new();
        for leaf in self.leaves() {
            attr.add(leaf.category, leaf.cycles());
        }
        attr
    }

    fn leaves(&self) -> impl Iterator<Item = &CycleSpan> {
        self.spans.iter().filter(|s| !self.spans.iter().any(|c| c.parent == Some(s.id)))
    }

    /// Checks the structural invariant: span ids unique, exactly one
    /// root, every span well-ordered (`start ≤ end`), and every parent
    /// tiled *exactly* by its non-concurrent children — chronological,
    /// gap-free, ending where the parent ends. Concurrent children
    /// ([`CycleCategory::is_concurrent`], e.g. the losing side of a
    /// hedged request) are exempt from the tiling: they only have to lie
    /// within the parent's bounds. A valid tree's foreground leaves
    /// therefore partition the root, which is what makes
    /// [`SpanTree::attribution`] sum to
    /// `total_cycles + concurrent leaf cycles` with nothing lost or
    /// double-counted.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            if s.start > s.end {
                return Err(format!("span {:?} ({}) ends before it starts", s.id, s.name));
            }
            if self.spans.iter().skip(i + 1).any(|t| t.id == s.id) {
                return Err(format!("duplicate span id {:?}", s.id));
            }
            match s.parent {
                None if i != 0 => return Err(format!("second root at index {i}")),
                Some(p) if !self.spans.iter().any(|t| t.id == p) => {
                    return Err(format!("span {:?} has unknown parent {:?}", s.id, p));
                }
                _ => {}
            }
        }
        for parent in &self.spans {
            let kids: Vec<&CycleSpan> = self.children(parent.id).collect();
            if kids.is_empty() {
                continue;
            }
            for k in kids.iter().filter(|k| k.category.is_concurrent()) {
                if k.start < parent.start || k.end > parent.end {
                    return Err(format!(
                        "concurrent child {} of {} ([{}, {})) overhangs the parent ([{}, {}))",
                        k.name, parent.name, k.start, k.end, parent.start, parent.end
                    ));
                }
            }
            let foreground: Vec<&&CycleSpan> =
                kids.iter().filter(|k| !k.category.is_concurrent()).collect();
            if foreground.is_empty() {
                continue;
            }
            let mut cursor = parent.start;
            for k in &foreground {
                if k.start != cursor {
                    return Err(format!(
                        "child {} of {} starts at {} (expected {cursor}): children must tile \
                         the parent contiguously",
                        k.name, parent.name, k.start
                    ));
                }
                cursor = k.end;
            }
            if cursor != parent.end {
                return Err(format!(
                    "children of {} end at {cursor}, parent ends at {}",
                    parent.name, parent.end
                ));
            }
        }
        Ok(())
    }

    /// Flattens the tree — ids, categories, bounds, name hashes — into a
    /// `Vec<u64>` for bitwise-determinism assertions.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![self.trace.0, self.spans.len() as u64];
        for s in &self.spans {
            fp.extend([
                s.id.0,
                s.parent.map_or(0, |p| p.0),
                s.category.code(),
                s.start,
                s.end,
                fnv1a(&s.name),
            ]);
        }
        fp
    }
}

/// Per-tile cycle breakdown reported by the accelerator. The three cycle
/// buckets sum exactly to the tile's billed cycles; `edt_saved` is
/// informational (cycles the truncated stream saved versus the
/// full-precision serial schedule) and outside the sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileProfile {
    /// MAC-stream cycles of the accepted compute (full-precision or
    /// layer-wide EDT tier).
    pub compute: u64,
    /// DMR verification replica cycles.
    pub verify: u64,
    /// Degraded (EDT) recompute cycles after retry exhaustion.
    pub recompute: u64,
    /// Cycles saved by stream truncation versus the full serial stream.
    pub edt_saved: u64,
}

impl TileProfile {
    /// Total billed cycles: `compute + verify + recompute`.
    pub fn cycles(&self) -> u64 {
        self.compute + self.verify + self.recompute
    }
}

/// Per-layer breakdown: a name plus its tiles in canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerProfile {
    /// Layer label (e.g. `conv0`).
    pub name: String,
    /// Tile breakdowns in the canonical `(m1, r1, c1)` enumeration.
    pub tiles: Vec<TileProfile>,
}

impl LayerProfile {
    /// Total layer cycles (sum of tile totals).
    pub fn cycles(&self) -> u64 {
        self.tiles.iter().map(TileProfile::cycles).sum()
    }
}

/// What one backend call reports about where its service cycles went.
/// Layers (and tiles within them) execute sequentially on the modelled
/// accelerator, so a profile whose total matches the service window lays
/// out contiguously inside it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackendProfile {
    /// Layers in execution order.
    pub layers: Vec<LayerProfile>,
}

impl BackendProfile {
    /// A profile holding one layer.
    pub fn single_layer(name: impl Into<String>, tiles: Vec<TileProfile>) -> BackendProfile {
        BackendProfile { layers: vec![LayerProfile { name: name.into(), tiles }] }
    }

    /// Total profiled cycles.
    pub fn cycles(&self) -> u64 {
        self.layers.iter().map(LayerProfile::cycles).sum()
    }
}

/// Adds an attribution into the global `attr.cycles.<category>`
/// counters (non-structural categories only — structural spans' cycles
/// live in their leaves). The serving layer calls this once per
/// finalized request, so summed over a run the counters equal the summed
/// request latencies.
pub fn record_attribution(attr: &CycleAttribution) {
    static COUNTERS: OnceLock<Vec<(CycleCategory, Counter)>> = OnceLock::new();
    let counters = COUNTERS.get_or_init(|| {
        CycleCategory::ALL
            .iter()
            .filter(|c| !c.is_structural())
            .map(|&c| (c, counter(&format!("attr.cycles.{}", c.name()))))
            .collect()
    });
    for (category, c) in counters {
        c.incr(attr.get(*category));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_and_span_ids_are_pure_functions() {
        assert_eq!(TraceId::derive(7, 42), TraceId::derive(7, 42));
        assert_ne!(TraceId::derive(7, 42), TraceId::derive(7, 43));
        assert_ne!(TraceId::derive(7, 42), TraceId::derive(8, 42));
        let t = TraceId::derive(0, 0);
        assert_eq!(SpanId::derive(t, "x", 1), SpanId::derive(t, "x", 1));
        assert_ne!(SpanId::derive(t, "x", 1), SpanId::derive(t, "x", 2));
        assert_ne!(SpanId::derive(t, "x", 1), SpanId::derive(t, "y", 1));
    }

    #[test]
    fn category_codes_are_stable_indices() {
        for (i, c) in CycleCategory::ALL.iter().enumerate() {
            assert_eq!(c.code(), i as u64);
        }
    }

    fn sample_tree() -> SpanTree {
        let trace = TraceId::derive(1, 5);
        let mut tree = SpanTree::new(trace, "request 5", CycleCategory::Request, 100, 400);
        let root = tree.root().id;
        tree.add(root, "queue wait", CycleCategory::QueueWait, 100, 150);
        let svc = tree.add(root, "attempt 1", CycleCategory::Service, 150, 400);
        let layer = tree.add(svc, "conv0", CycleCategory::Layer, 150, 400);
        let tile = tree.add(layer, "tile 0", CycleCategory::Tile, 150, 400);
        tree.add(tile, "mac stream", CycleCategory::MacStream, 150, 380);
        tree.add(tile, "dmr verify", CycleCategory::DmrVerify, 380, 400);
        tree
    }

    #[test]
    fn valid_tree_partitions_root_exactly() {
        let tree = sample_tree();
        tree.validate().expect("well-formed");
        assert_eq!(tree.total_cycles(), 300);
        assert_eq!(tree.leaf_cycles(), 300);
        let attr = tree.attribution();
        assert_eq!(attr.get(CycleCategory::QueueWait), 50);
        assert_eq!(attr.get(CycleCategory::MacStream), 230);
        assert_eq!(attr.get(CycleCategory::DmrVerify), 20);
        assert_eq!(attr.total(), tree.total_cycles());
    }

    #[test]
    fn gaps_and_overhangs_fail_validation() {
        let trace = TraceId::derive(0, 1);
        let mut gap = SpanTree::new(trace, "r", CycleCategory::Request, 0, 100);
        let root = gap.root().id;
        gap.add(root, "a", CycleCategory::QueueWait, 0, 40);
        gap.add(root, "b", CycleCategory::Service, 50, 100);
        assert!(gap.validate().is_err(), "a 40..50 gap must fail");

        let mut short = SpanTree::new(trace, "r", CycleCategory::Request, 0, 100);
        let root = short.root().id;
        short.add(root, "a", CycleCategory::QueueWait, 0, 90);
        assert!(short.validate().is_err(), "children ending early must fail");
    }

    #[test]
    fn concurrent_spans_are_exempt_from_tiling_but_bounded() {
        let trace = TraceId::derive(0, 9);
        let mut tree = SpanTree::new(trace, "r", CycleCategory::Request, 0, 100);
        let root = tree.root().id;
        tree.add(root, "wait", CycleCategory::QueueWait, 0, 40);
        let svc = tree.add(root, "service", CycleCategory::Service, 40, 100);
        tree.add(svc, "mac stream", CycleCategory::MacStream, 40, 100);
        // A hedge loser overlapping the foreground timeline: valid as
        // long as it stays inside the parent.
        tree.add(root, "hedge loser", CycleCategory::HedgeWasted, 55, 100);
        tree.validate().expect("concurrent child inside the parent is valid");
        let attr = tree.attribution();
        assert_eq!(attr.get(CycleCategory::HedgeWasted), 45);
        assert_eq!(attr.concurrent_total(), 45);
        assert_eq!(attr.total(), tree.total_cycles() + attr.concurrent_total());

        // But it must not overhang the parent.
        let mut bad = SpanTree::new(trace, "r", CycleCategory::Request, 0, 100);
        let root = bad.root().id;
        bad.add(root, "wait", CycleCategory::QueueWait, 0, 100);
        bad.add(root, "hedge loser", CycleCategory::HedgeWasted, 90, 130);
        assert!(bad.validate().is_err(), "overhanging concurrent child must fail");
    }

    #[test]
    fn try_add_rejects_unknown_parents_without_panicking() {
        let trace = TraceId::derive(0, 3);
        let mut tree = SpanTree::new(trace, "r", CycleCategory::Request, 0, 10);
        let bogus = SpanId(0xDEAD_BEEF);
        let err = tree
            .try_add(bogus, "orphan", CycleCategory::QueueWait, 0, 10)
            .expect_err("unknown parent must be a typed error");
        assert!(err.contains("does not exist"), "error names the failure: {err}");
        assert_eq!(tree.spans().len(), 1, "failed add must not mutate the tree");
        let root = tree.root().id;
        tree.try_add(root, "child", CycleCategory::QueueWait, 0, 10).expect("valid parent");
        tree.validate().expect("well-formed after try_add");
    }

    #[test]
    fn recovery_replay_is_concurrent_like_hedge_wasted() {
        let trace = TraceId::derive(0, 4);
        let mut tree = SpanTree::new(trace, "r", CycleCategory::Request, 0, 100);
        let root = tree.root().id;
        tree.add(root, "wait", CycleCategory::QueueWait, 0, 100);
        // A replayed request's stranded window overlaps its own
        // queue-wait accounting — legal precisely because the category
        // is concurrent.
        tree.add(root, "recovery replay", CycleCategory::RecoveryReplay, 10, 60);
        tree.validate().expect("concurrent replay shadow is valid");
        let attr = tree.attribution();
        assert_eq!(attr.get(CycleCategory::RecoveryReplay), 50);
        assert_eq!(attr.concurrent_total(), 50);
        assert_eq!(attr.total(), tree.total_cycles() + attr.concurrent_total());
    }

    #[test]
    fn zero_length_markers_are_valid_between_siblings() {
        let trace = TraceId::derive(0, 2);
        let mut tree = SpanTree::new(trace, "r", CycleCategory::Request, 10, 30);
        let root = tree.root().id;
        tree.add(root, "wait", CycleCategory::QueueWait, 10, 20);
        tree.add(root, "breaker open", CycleCategory::Breaker, 20, 20);
        tree.add(root, "backoff", CycleCategory::BackoffWait, 20, 30);
        tree.validate().expect("zero-length markers tile trivially");
        assert_eq!(tree.attribution().total(), 20);
    }

    #[test]
    fn fingerprint_is_sensitive_to_structure_and_names() {
        let a = sample_tree();
        let mut b = sample_tree();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let root = b.root().id;
        b.add(root, "extra", CycleCategory::Breaker, 400, 400);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn profiles_sum_their_parts() {
        let t = TileProfile { compute: 10, verify: 20, recompute: 5, edt_saved: 99 };
        assert_eq!(t.cycles(), 35, "edt_saved is informational, not billed");
        let p = BackendProfile::single_layer("conv0", vec![t, TileProfile::default()]);
        assert_eq!(p.cycles(), 35);
        assert_eq!(p.layers[0].name, "conv0");
    }

    #[test]
    fn record_attribution_feeds_global_counters() {
        let _g = crate::test_guard();
        crate::metrics::reset();
        crate::metrics::set_enabled(true);
        let mut attr = CycleAttribution::new();
        attr.add(CycleCategory::QueueWait, 7);
        attr.add(CycleCategory::MacStream, 11);
        record_attribution(&attr);
        let snap = crate::metrics::snapshot();
        let get = |name: &str| {
            snap.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("attr.cycles.queue_wait"), 7);
        assert_eq!(get("attr.cycles.mac_stream"), 11);
        crate::metrics::set_enabled(false);
    }
}
