//! A minimal JSON value model, renderer, and parser.
//!
//! Just enough JSON to write and re-read [`crate::manifest::RunManifest`]
//! files without an external dependency. Object key order is preserved
//! (insertion order), and unsigned integers get their own variant so
//! 64-bit counters survive a round trip exactly (an `f64` would lose
//! precision above 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits in `u64` (exact).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    let text = format!("{f}");
                    out.push_str(&text);
                    // `{}` on an integral f64 prints no decimal point;
                    // keep one so the value re-parses as Num, not UInt.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1; // cursor onto the 'u' for hex4
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            s.push(c);
                            continue; // hex4 already advanced pos past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                    self.pos = end;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads the four hex digits after a `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if integral && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig5 \"quick\"".to_string())),
            ("seed", Json::UInt(u64::MAX)),
            ("ratio", Json::Num(-0.125)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("cycles", Json::Arr(vec![Json::UInt(16), Json::UInt(256)])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = Json::UInt(9_007_199_254_740_993); // 2^53 + 1: not representable in f64
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn integral_float_renders_with_decimal_point() {
        let v = Json::Num(3.0);
        let text = v.render();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, 2.5]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        let arr = doc.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(doc.get("missing").is_none());
    }
}
