//! Chrome Trace Format export for [`crate::trace::SpanTree`]s.
//!
//! Emits the JSON-array trace-event format Perfetto and
//! `chrome://tracing` load directly: one `"X"` (complete) event per
//! span with `ts`/`dur` in virtual cycles (rendered as microseconds —
//! 1 µs on screen = 1 accelerator cycle), plus `"M"` metadata events
//! naming processes and lanes.
//!
//! Span trees are deterministic and carry no thread identity, so lane
//! (`tid`) assignment happens here, at export time, purely for display:
//! requests are laid out greedily by root interval (first-fit interval
//! partitioning), each request's whole tree on one lane, overlapping
//! requests on different lanes. The first `worker_lanes` lanes are
//! labelled after the run's `sc-par` workers — concurrent-resident
//! requests beyond that land on overflow lanes. Changing `SC_THREADS`
//! relabels lanes; it never changes the spans.

use crate::json::Json;
use crate::trace::SpanTree;

/// Builds the Chrome-trace JSON for one or more scenario groups. Each
/// `(name, trees)` pair becomes one process (`pid` = index + 1) so
/// scenarios stay separable in the Perfetto timeline; `worker_lanes` is
/// the run's `sc-par` worker count used to label display lanes.
pub fn chrome_trace(processes: &[(&str, &[SpanTree])], worker_lanes: usize) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (pi, (pname, trees)) in processes.iter().enumerate() {
        let pid = (pi + 1) as u64;
        events.push(meta_event("process_name", pid, None, pname));
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".to_string())),
            ("name", Json::Str("process_sort_index".to_string())),
            ("pid", Json::UInt(pid)),
            ("args", Json::obj(vec![("sort_index", Json::UInt(pid))])),
        ]));
        let lanes = assign_lanes(trees);
        let lane_count = lanes.iter().copied().max().map_or(0, |m| m + 1);
        for lane in 0..lane_count {
            let label = if lane < worker_lanes {
                format!("sc-par worker {lane}")
            } else {
                format!("overflow lane {}", lane - worker_lanes)
            };
            let tid = (lane + 1) as u64;
            events.push(meta_event("thread_name", pid, Some(tid), &label));
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".to_string())),
                ("name", Json::Str("thread_sort_index".to_string())),
                ("pid", Json::UInt(pid)),
                ("tid", Json::UInt(tid)),
                ("args", Json::obj(vec![("sort_index", Json::UInt(tid))])),
            ]));
        }
        for (tree, &lane) in trees.iter().zip(&lanes) {
            let tid = (lane + 1) as u64;
            for span in tree.spans() {
                events.push(Json::obj(vec![
                    ("ph", Json::Str("X".to_string())),
                    ("name", Json::Str(span.name.clone())),
                    ("cat", Json::Str(span.category.name().to_string())),
                    ("ts", Json::UInt(span.start)),
                    ("dur", Json::UInt(span.cycles())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(tid)),
                    (
                        "args",
                        Json::obj(vec![
                            ("trace", Json::Str(format!("{:#018x}", tree.trace_id().0))),
                            ("span", Json::Str(format!("{:#018x}", span.id.0))),
                        ]),
                    ),
                ]));
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        (
            "metadata",
            Json::obj(vec![
                (
                    "clock",
                    Json::Str("virtual accelerator cycles (1 event \u{b5}s = 1 cycle)".to_string()),
                ),
                ("worker_lanes", Json::UInt(worker_lanes as u64)),
            ]),
        ),
    ])
}

/// First-fit interval partitioning over root spans, in (start, end,
/// trace-id) order: returns one display lane per tree such that trees
/// sharing a lane never overlap in time. Deterministic — a pure
/// function of the trees.
pub fn assign_lanes(trees: &[SpanTree]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..trees.len()).collect();
    order.sort_by_key(|&i| (trees[i].root().start, trees[i].root().end, trees[i].trace_id().0));
    let mut lane_free_at: Vec<u64> = Vec::new();
    let mut lanes = vec![0usize; trees.len()];
    for i in order {
        let root = trees[i].root();
        let lane = match lane_free_at.iter().position(|&end| end <= root.start) {
            Some(l) => l,
            None => {
                lane_free_at.push(0);
                lane_free_at.len() - 1
            }
        };
        // A zero-length root still reserves its tick so coincident
        // zero-length requests spread across lanes readably.
        lane_free_at[lane] = root.end.max(root.start + 1);
        lanes[i] = lane;
    }
    lanes
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut pairs = vec![
        ("ph", Json::Str("M".to_string())),
        ("name", Json::Str(name.to_string())),
        ("pid", Json::UInt(pid)),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Json::UInt(tid)));
    }
    pairs.push(("args", Json::obj(vec![("name", Json::Str(value.to_string()))])));
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CycleCategory, TraceId};

    fn tree(seed: u64, id: u64, start: u64, end: u64) -> SpanTree {
        let trace = TraceId::derive(seed, id);
        let mut t =
            SpanTree::new(trace, format!("request {id}"), CycleCategory::Request, start, end);
        let root = t.root().id;
        t.add(root, "service", CycleCategory::MacStream, start, end);
        t
    }

    #[test]
    fn overlapping_requests_take_distinct_lanes() {
        let trees = vec![tree(0, 0, 0, 100), tree(0, 1, 50, 150), tree(0, 2, 120, 200)];
        let lanes = assign_lanes(&trees);
        assert_ne!(lanes[0], lanes[1], "overlapping roots must not share a lane");
        // Request 2 starts after request 0 ends: lane 0 is reusable.
        assert_eq!(lanes[2], lanes[0]);
    }

    #[test]
    fn lane_assignment_is_deterministic() {
        let trees = vec![tree(3, 0, 0, 10), tree(3, 1, 0, 10), tree(3, 2, 5, 30)];
        assert_eq!(assign_lanes(&trees), assign_lanes(&trees));
    }

    #[test]
    fn export_parses_back_and_counts_events() {
        let trees = vec![tree(1, 0, 0, 100), tree(1, 1, 20, 60)];
        let json = chrome_trace(&[("storm", &trees)], 2);
        let reparsed = Json::parse(&json.render_pretty()).expect("valid JSON");
        let events = reparsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let xs = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count();
        assert_eq!(xs, 4, "two trees x two spans");
        // Every X event carries the deterministic trace id in args.
        assert!(events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .all(|e| e.get("args").and_then(|a| a.get("trace")).is_some()));
        let metas =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).count();
        assert!(metas >= 3, "process + lane metadata present, got {metas}");
    }
}
