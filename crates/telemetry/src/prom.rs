//! Prometheus text-format exposition for metric snapshots and health
//! summaries.
//!
//! Renders the subset of the format the ecosystem tooling actually
//! parses: `# TYPE` lines, one sample per line, histograms as
//! cumulative `_bucket{le=…}` series plus `_sum`/`_count`. Metric names
//! are sanitized (anything outside `[a-zA-Z0-9_:]` becomes `_`), and
//! every sample carries a `bench` label so dumps from several benches
//! can be concatenated or scraped into one corpus.
//!
//! This is the **only** Prometheus writer in the workspace: the bench
//! bins and the `sc_health` bin both route their `.prom` output through
//! here (sc-health re-exports this module for back-compat).

use crate::manifest::HealthSummary;
use crate::metrics::MetricsSnapshot;

/// Sanitizes a dotted metric name into a legal Prometheus identifier.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let digit_start = i == 0 && c.is_ascii_digit();
        if ok && !digit_start {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Renders a full metrics snapshot as Prometheus text, labelling every
/// sample with `bench="<bench>"`.
pub fn render(bench: &str, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n"));
        out.push_str(&format!("{n}{{bench=\"{bench}\"}} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("{n}{{bench=\"{bench}\"}} {}\n", fmt_f64(*value)));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.buckets[i];
            out.push_str(&format!("{n}_bucket{{bench=\"{bench}\",le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{bench=\"{bench}\",le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum{{bench=\"{bench}\"}} {}\n", h.sum));
        out.push_str(&format!("{n}_count{{bench=\"{bench}\"}} {}\n", h.count));
    }
    out
}

/// Renders a manifest health summary as Prometheus gauges (appended to
/// the [`render`] output by the `sc_health` bin).
pub fn render_health(bench: &str, h: &HealthSummary) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, value: String| {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name}{{bench=\"{bench}\"}} {value}\n"));
    };
    gauge("sc_health_window_cycles", h.window.to_string());
    gauge("sc_health_windows", h.windows.to_string());
    gauge("sc_health_objectives", h.objectives.to_string());
    gauge("sc_health_breaches", h.breaches.to_string());
    gauge("sc_health_recoveries", h.recoveries.to_string());
    gauge("sc_health_incidents", h.incidents.to_string());
    gauge("sc_health_reseeds", h.reseeds.to_string());
    // Verdict as a one-hot enum gauge, the Prometheus idiom for states.
    for v in ["green", "burning", "breached"] {
        out.push_str("# TYPE sc_health_verdict gauge\n");
        out.push_str(&format!(
            "sc_health_verdict{{bench=\"{bench}\",verdict=\"{v}\"}} {}\n",
            (h.verdict == v) as u64
        ));
    }
    for (tier, cycles) in &h.time_in_tier {
        out.push_str("# TYPE sc_health_time_in_tier_cycles gauge\n");
        out.push_str(&format!(
            "sc_health_time_in_tier_cycles{{bench=\"{bench}\",tier=\"{}\"}} {cycles}\n",
            sanitize(tier)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("serve.latency"), "serve_latency");
        assert_eq!(sanitize("fault.injected.serve.backend"), "fault_injected_serve_backend");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        let snap = MetricsSnapshot {
            counters: vec![("serve.completed".to_string(), 42)],
            gauges: vec![("serve.goodput".to_string(), 0.5)],
            histograms: vec![(
                "serve.latency".to_string(),
                HistogramSnapshot {
                    bounds: vec![1, 2, 4],
                    buckets: vec![1, 2, 0, 3],
                    count: 6,
                    sum: 100,
                    max: 50,
                },
            )],
        };
        let text = render("storm", &snap);
        assert!(text.contains("# TYPE serve_completed counter\n"));
        assert!(text.contains("serve_completed{bench=\"storm\"} 42\n"));
        assert!(text.contains("serve_goodput{bench=\"storm\"} 0.5\n"));
        // Buckets are cumulative: 1, 3, 3, then +Inf carries the total.
        assert!(text.contains("serve_latency_bucket{bench=\"storm\",le=\"1\"} 1\n"));
        assert!(text.contains("serve_latency_bucket{bench=\"storm\",le=\"2\"} 3\n"));
        assert!(text.contains("serve_latency_bucket{bench=\"storm\",le=\"4\"} 3\n"));
        assert!(text.contains("serve_latency_bucket{bench=\"storm\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("serve_latency_sum{bench=\"storm\"} 100\n"));
        assert!(text.contains("serve_latency_count{bench=\"storm\"} 6\n"));
    }

    #[test]
    fn integral_gauges_keep_a_decimal_point() {
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![("par.utilization".to_string(), 3.0)],
            histograms: vec![],
        };
        assert!(render("b", &snap).contains("par_utilization{bench=\"b\"} 3.0\n"));
    }

    #[test]
    fn health_summary_renders_verdict_one_hot() {
        let h = HealthSummary {
            window: 4096,
            windows: 10,
            objectives: 3,
            breaches: 2,
            recoveries: 1,
            incidents: 2,
            verdict: "breached".to_string(),
            reseeds: 4,
            time_in_tier: vec![("tier0".to_string(), 100), ("tier1".to_string(), 50)],
        };
        let text = render_health("storm", &h);
        assert!(text.contains("sc_health_breaches{bench=\"storm\"} 2\n"));
        assert!(text.contains("sc_health_reseeds{bench=\"storm\"} 4\n"));
        assert!(text.contains("sc_health_verdict{bench=\"storm\",verdict=\"breached\"} 1\n"));
        assert!(text.contains("sc_health_verdict{bench=\"storm\",verdict=\"green\"} 0\n"));
        assert!(text.contains("sc_health_time_in_tier_cycles{bench=\"storm\",tier=\"tier1\"} 50\n"));
    }
}
