//! A process-global metrics registry: named counters, gauges, and
//! fixed-bucket histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; instrumentation sites
//! cache them in `OnceLock` statics so the name lookup happens once.
//! Recording is gated on a global flag: when metrics are disabled (the
//! default outside [`crate::bench::bench_run`]) every `incr`/`set`/
//! `record` is a single relaxed atomic load and an early return, so
//! instrumented hot loops cost ~nothing.
//!
//! Counters **wrap** on overflow (they are `u64` modular accumulators,
//! like hardware cycle counters); gauges store the last value; histogram
//! values above the last bucket bound land in an unbounded overflow
//! bucket.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing (modulo 2⁶⁴) counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` (wrapping on overflow). No-op while metrics are
    /// disabled.
    #[inline]
    pub fn incr(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the value. No-op while metrics are disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `u64` values.
///
/// Bucket `i` counts values `v ≤ bounds[i]` (and greater than the
/// previous bound); one extra overflow bucket counts values above the
/// last bound. The exact count and sum are tracked alongside.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. No-op while metrics are disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Nearest-rank quantile of only the values recorded **since**
    /// `prev` was snapshotted from this same histogram — the windowed
    /// quantile path. One pass over the live buckets, subtracting the
    /// baseline as it goes: no intermediate snapshot allocation and no
    /// re-scan of the full recorded history per tick.
    ///
    /// Returns 0 for an empty window (`prev` equals the current state).
    /// The estimate is the matching bucket's upper bound clamped to the
    /// *overall* recorded maximum (the per-window maximum is not
    /// tracked), so it shares [`HistogramSnapshot::quantile`]'s 2×
    /// bound under log2 bucketing.
    ///
    /// # Panics
    ///
    /// Panics if `prev` was taken from a histogram with different
    /// bucket bounds.
    pub fn quantile_at_window(&self, prev: &HistogramSnapshot, q: f64) -> u64 {
        assert_eq!(prev.bounds, self.bounds, "window baseline is from a different histogram");
        let count = self.count.load(Ordering::Relaxed).wrapping_sub(prev.count);
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let max = self.max.load(Ordering::Relaxed);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed).wrapping_sub(prev.buckets[i]);
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                return bound.min(max);
            }
        }
        max
    }

    /// A point-in-time copy of the bucket counts (one extra overflow
    /// slot), total count, and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Power-of-two bucket bounds `1, 2, 4, …, 2^max_exp` — the standard
/// bounds for latency histograms, giving ~constant relative quantile
/// error across six decades.
pub fn log2_bounds(max_exp: u32) -> Vec<u64> {
    (0..=max_exp.min(63)).map(|e| 1u64 << e).collect()
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Counts per bucket; `buckets[bounds.len()]` is the overflow
    /// bucket.
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (0 if empty; absent in manifests written
    /// before quantile support and defaulted to 0 on read).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ (0, 1]`: the upper bound
    /// of the bucket holding the rank, clamped to the recorded maximum
    /// (so an overflow-bucket or sparse-top rank reports `max`, not an
    /// arbitrary bound). 0 when empty. With log2 bounds the estimate is
    /// within 2× of the true quantile by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Nearest-rank quantile of only the values recorded between `prev`
    /// and this snapshot (both taken from the same histogram). The
    /// frozen-state counterpart of [`Histogram::quantile_at_window`],
    /// for code that already holds two snapshots. Returns 0 on an empty
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn quantile_since(&self, prev: &HistogramSnapshot, q: f64) -> u64 {
        assert_eq!(prev.bounds, self.bounds, "window baseline is from a different histogram");
        let count = self.count.wrapping_sub(prev.count);
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c.wrapping_sub(prev.buckets[i]);
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns (creating on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    registry()
        .counters
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_insert_with(|| Counter { cell: Arc::new(AtomicU64::new(0)) })
        .clone()
}

/// Returns (creating on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    registry()
        .gauges
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_insert_with(|| Gauge { cell: Arc::new(AtomicU64::new(0f64.to_bits())) })
        .clone()
}

/// Returns (creating on first use) the histogram named `name` with the
/// given bucket upper bounds. Bounds are fixed at creation; later calls
/// with different bounds get the existing histogram.
pub fn histogram(name: &str, bounds: &[u64]) -> Arc<Histogram> {
    registry()
        .histograms
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(Histogram::new(bounds)))
        .clone()
}

/// A frozen copy of every metric in the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value (sorted by name).
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value (sorted by name).
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → snapshot (sorted by name).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
        gauges: r.gauges.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
        histograms: r
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
    }
}

/// Zeroes every registered metric (handles stay valid). Used by the
/// bench harness so each run's manifest reflects only that run.
pub fn reset() {
    let r = registry();
    for c in r.counters.lock().unwrap().values() {
        c.cell.store(0, Ordering::Relaxed);
    }
    for g in r.gauges.lock().unwrap().values() {
        g.cell.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for h in r.histograms.lock().unwrap().values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = crate::test_guard();
        set_enabled(false);
        let c = counter("test.disabled.counter");
        c.incr(5);
        assert_eq!(c.get(), 0);
        let h = histogram("test.disabled.hist", &[1, 2]);
        h.record(1);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_incr_and_wrapping_overflow() {
        let _g = crate::test_guard();
        set_enabled(true);
        let c = counter("test.counter.wrap");
        c.incr(u64::MAX);
        c.incr(2);
        // Wraps modulo 2^64 rather than saturating or panicking.
        assert_eq!(c.get(), 1);
        set_enabled(false);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let _g = crate::test_guard();
        set_enabled(true);
        let h = histogram("test.hist.bounds", &[10, 100, 1000]);
        // On-boundary values land in the bucket whose bound they equal.
        for v in [0, 10] {
            h.record(v);
        }
        h.record(11); // second bucket
        h.record(100); // second bucket (≤ 100)
        h.record(101); // third
        h.record(1000); // third
        h.record(1001); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 2, 1]);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 10 + 11 + 100 + 101 + 1000 + 1001);
        assert_eq!(s.max, 1001);
        assert!((s.mean() - s.sum as f64 / 7.0).abs() < 1e-12);
        set_enabled(false);
    }

    #[test]
    fn log2_bounds_are_powers_of_two() {
        assert_eq!(log2_bounds(4), vec![1, 2, 4, 8, 16]);
        assert_eq!(log2_bounds(0), vec![1]);
        assert_eq!(log2_bounds(200).len(), 64, "exponents clamp at u64 width");
    }

    #[test]
    fn quantiles_are_nearest_rank_bucket_bounds_clamped_to_max() {
        let _g = crate::test_guard();
        set_enabled(true);
        let h = histogram("test.hist.quantiles", &log2_bounds(10));
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank 50 lands in the (32, 64] bucket; the bound overestimates
        // within 2x of the true median 50.
        assert_eq!(s.p50(), 64);
        assert_eq!(s.p90(), 100, "top-bucket ranks clamp to the recorded max");
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.max, 100);
        // Values beyond the last bound land in the overflow bucket and
        // report max.
        let o = histogram("test.hist.quantiles.overflow", &[4]);
        o.record(1_000_000);
        assert_eq!(o.snapshot().quantile(0.5), 1_000_000);
        // Empty histogram: all quantiles 0.
        assert_eq!(histogram("test.hist.quantiles.empty", &[1]).snapshot().p99(), 0);
        set_enabled(false);
    }

    #[test]
    fn windowed_quantiles_see_only_values_after_the_baseline() {
        let _g = crate::test_guard();
        set_enabled(true);
        let h = histogram("test.hist.window", &log2_bounds(10));
        for v in 1..=100u64 {
            h.record(v);
        }
        let baseline = h.snapshot();
        // Empty window: nothing recorded since the baseline.
        assert_eq!(h.quantile_at_window(&baseline, 0.99), 0);
        assert_eq!(h.snapshot().quantile_since(&baseline, 0.99), 0);
        // The window sees only the three new values, not the hundred
        // before the baseline.
        for v in [3, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.quantile_at_window(&baseline, 0.50), 4);
        assert_eq!(h.quantile_at_window(&baseline, 0.99), 4);
        let now = h.snapshot();
        assert_eq!(now.quantile_since(&baseline, 0.50), 4);
        assert_eq!(now.quantile_since(&baseline, 0.99), 4);
        // The full-history quantile still reflects everything.
        assert_eq!(now.p99(), 100);
        set_enabled(false);
    }

    #[test]
    fn windowed_quantiles_single_bucket_edge_cases() {
        let _g = crate::test_guard();
        set_enabled(true);
        // One bound, so two buckets: [0, 8] and overflow.
        let h = histogram("test.hist.window.single", &[8]);
        let empty = h.snapshot();
        assert_eq!(h.quantile_at_window(&empty, 0.5), 0, "empty window on empty histogram");
        h.record(5);
        // Single in-bounds value: every quantile is the bucket bound
        // clamped to the recorded max.
        assert_eq!(h.quantile_at_window(&empty, 0.01), 5);
        assert_eq!(h.quantile_at_window(&empty, 1.0), 5);
        let after_first = h.snapshot();
        // Next window holds a single overflow value and reports the max.
        h.record(1_000);
        assert_eq!(h.quantile_at_window(&after_first, 0.5), 1_000);
        assert_eq!(h.snapshot().quantile_since(&after_first, 0.5), 1_000);
        set_enabled(false);
    }

    #[test]
    fn windowed_quantiles_collapse_when_one_bucket_holds_the_window() {
        let _g = crate::test_guard();
        set_enabled(true);
        let h = histogram("test.hist.window.onebucket", &log2_bounds(10));
        h.record(1_000); // pre-baseline history in a high bucket
        let baseline = h.snapshot();
        // Every post-baseline value lands in the (8, 16] bucket, so all
        // quantiles collapse to that bucket's upper bound.
        for v in [9, 11, 13, 16] {
            h.record(v);
        }
        for q in [0.01, 0.25, 0.50, 0.99, 1.0] {
            assert_eq!(h.quantile_at_window(&baseline, q), 16, "q={q}");
            assert_eq!(h.snapshot().quantile_since(&baseline, q), 16, "q={q}");
        }
        set_enabled(false);
    }

    #[test]
    fn windowed_quantile_max_clamp_spans_window_rotations() {
        let _g = crate::test_guard();
        set_enabled(true);
        let h = histogram("test.hist.window.maxclamp", &log2_bounds(10));
        // First window: a single mid-bucket value. The clamp uses the
        // overall max (per-window maxima are not tracked), which right
        // now equals this value.
        let w0 = h.snapshot();
        h.record(5);
        assert_eq!(h.quantile_at_window(&w0, 1.0), 5);
        let w1 = h.snapshot();
        // Second window raises the overall max into the overflow range;
        // the windowed quantile reports it exactly.
        h.record(2_000);
        assert_eq!(h.quantile_at_window(&w1, 0.5), 2_000);
        let w2 = h.snapshot();
        // Third window: only small values, but the quantile's bucket
        // bound (8 for value 6) is below the stale overall max, so the
        // clamp is inert and the answer stays window-accurate.
        h.record(6);
        assert_eq!(h.quantile_at_window(&w2, 1.0), 8);
        // A fourth window whose values share the overflow bucket with
        // the stale max reports the *overall* max, not the window max —
        // the documented approximation of not tracking per-window
        // maxima.
        let w3 = h.snapshot();
        h.record(1_500);
        assert_eq!(h.quantile_at_window(&w3, 1.0), 2_000);
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "different histogram")]
    fn windowed_quantile_rejects_foreign_baseline() {
        let _g = crate::test_guard();
        let h = histogram("test.hist.window.foreign.a", &[1, 2]);
        let other = histogram("test.hist.window.foreign.b", &[1, 2, 4]).snapshot();
        let _ = h.quantile_at_window(&other, 0.5);
    }

    #[test]
    fn gauge_last_value_wins() {
        let _g = crate::test_guard();
        set_enabled(true);
        let g = gauge("test.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        set_enabled(false);
    }

    #[test]
    fn snapshot_and_reset() {
        let _g = crate::test_guard();
        set_enabled(true);
        let c = counter("test.snapshot.counter");
        c.incr(3);
        let snap = snapshot();
        assert!(snap.counters.iter().any(|(name, v)| name == "test.snapshot.counter" && *v >= 3));
        reset();
        assert_eq!(c.get(), 0);
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[5, 5]);
    }
}
