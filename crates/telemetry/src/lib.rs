//! # sc-telemetry — the workspace observability layer
//!
//! The paper's claims (Figs. 5–7, Tables 1–3) are all *measurements*:
//! cycle counts, MAC-array energy, per-layer latency, CNN accuracy. This
//! crate is the substrate every measurement flows through:
//!
//! * [`span`] — lightweight structured tracing: [`span!`] opens a nested,
//!   wall-clock-timed span; [`event!`] marks a point in time. A global
//!   [`span::Subscriber`] renders to stderr ([`span::StderrSubscriber`]),
//!   collects silently ([`span::CollectingSubscriber`]), or — the default
//!   — costs one relaxed atomic load and nothing else.
//! * [`metrics`] — a process-global registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and fixed-bucket [`metrics::Histogram`]s. Handles
//!   are cheap `Arc`s; recording is a relaxed atomic when enabled and a
//!   single flag check when disabled, so instrumented hot loops (the tile
//!   engine, the RTL cycle loop) pay ~nothing in normal runs.
//! * [`export`] — dependency-free CSV and JSON serialization for metric
//!   snapshots and arbitrary tables (the `sc-bench` CSV writer is a thin
//!   wrapper over this).
//! * [`json`] — a minimal JSON value model + parser, enough to round-trip
//!   manifests without a registry dependency.
//! * [`manifest`] — [`manifest::RunManifest`]: the reproducibility record
//!   (config, precision, arithmetic, seed, git describe, timestamp,
//!   tier-1 status) written next to every bench artifact.
//! * [`bench`] — [`bench::bench_run`]: the shared harness all
//!   `sc-bench` binaries route through (preamble, `--quick`/`--csv`
//!   parsing, tracing/metrics setup from `SC_TRACE`, manifest emission).
//! * [`obs`] — the deterministic observability plane: bounded
//!   per-request event logs ([`obs::ObsLog`]) with counter-keyed
//!   reservoir/exemplar sampling, folded-stack cycle flamegraphs
//!   ([`obs::FoldedStacks`]), and the [`obs::ObsView`] query engine
//!   behind the `sc_obs` CLI.
//! * [`prom`] — the single Prometheus text-exposition writer shared by
//!   every `.prom` emitter in the workspace.
//!
//! ## Enabling tracing
//!
//! Set `SC_TRACE=stderr` to render spans/events to stderr as they
//! happen. Anything else (or unset) keeps tracing silent. Metrics are
//! enabled automatically inside [`bench::bench_run`] and exported into
//! the run manifest.
//!
//! Instrumented code is *behavior-neutral*: telemetry being on or off
//! never changes computed outputs, only what gets observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chrome;
pub mod export;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod obs;
pub mod prom;
pub mod span;
pub mod trace;

pub use bench::{bench_run, BenchCtx};
pub use manifest::{HealthSummary, RunManifest, TraceSummary, MANIFEST_SCHEMA_VERSION};
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use obs::{
    folded_share_regressions, EventRecord, FoldedStacks, ObsConfig, ObsLog, ObsQuery, ObsView,
    ScenarioSummary, OBS_SCHEMA_VERSION,
};
pub use trace::{
    record_attribution, BackendProfile, CycleAttribution, CycleCategory, CycleSpan, LayerProfile,
    SpanId, SpanTree, TileProfile, TraceId,
};

/// Serializes tests that flip the process-global subscriber/metrics
/// state so they can't race each other.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
