//! Reproducible run manifests.
//!
//! A [`RunManifest`] is the provenance record written alongside every
//! bench artifact in `results/`: what ran, with which configuration
//! (precision, arithmetic, seed, CLI args), against which source tree
//! (`git describe`), when, whether the tier-1 suite was passing, and the
//! full metrics snapshot the run produced. Re-running the binary with
//! the same manifest config must reproduce the artifact.

use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::export::{metrics_from_json, metrics_to_json, write_json};
use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// The manifest schema version written by this build. Bump it whenever
/// a field is added, removed, or changes meaning; consumers (`scripts/
/// ci.sh`, external tooling) key their expectations on it. Version 1 is
/// the pre-versioning era: manifests with no `schema_version` field.
/// Version 3 adds the `trace` summary and `attribution` breakdown.
/// Version 4 adds the `health` summary (SLO verdicts, breach/incident
/// counts, time-in-tier) written by benches that run the sc-health
/// monitor. Version 5 adds `reseeds` (replica-rejoin verdict resets) to
/// the health summary.
pub const MANIFEST_SCHEMA_VERSION: u64 = 5;

/// Summary of a Chrome-trace export attached to a run (schema v3).
///
/// `attributed_cycles` is the sum of leaf-span cycles across every
/// request tree; `total_cycles` the sum of root-span durations. The
/// span-tree validity invariant makes the two equal by construction,
/// so [`TraceSummary::coverage`] is the honest "how much of the run's
/// latency does the trace explain" ratio for external tooling.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Path of the `.trace.json` artifact, relative to the repo root.
    pub file: String,
    /// Number of request span trees exported.
    pub requests: u64,
    /// Total spans across all trees.
    pub spans: u64,
    /// Sum of root-span durations (virtual cycles).
    pub total_cycles: u64,
    /// Sum of leaf-span durations (virtual cycles).
    pub attributed_cycles: u64,
}

impl TraceSummary {
    /// Fraction of total request cycles covered by leaf spans (1.0 when
    /// there are no cycles to attribute).
    pub fn coverage(&self) -> f64 {
        if self.total_cycles == 0 {
            1.0
        } else {
            self.attributed_cycles as f64 / self.total_cycles as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("file", Json::Str(self.file.clone())),
            ("requests", Json::UInt(self.requests)),
            ("spans", Json::UInt(self.spans)),
            ("total_cycles", Json::UInt(self.total_cycles)),
            ("attributed_cycles", Json::UInt(self.attributed_cycles)),
        ])
    }

    fn from_json(json: &Json) -> Option<TraceSummary> {
        Some(TraceSummary {
            file: json.get("file")?.as_str()?.to_string(),
            requests: json.get("requests")?.as_u64()?,
            spans: json.get("spans")?.as_u64()?,
            total_cycles: json.get("total_cycles")?.as_u64()?,
            attributed_cycles: json.get("attributed_cycles")?.as_u64()?,
        })
    }
}

/// Summary of a run's live-health evaluation (schema v4).
///
/// This is the manifest-side rollup of an `sc-health` report: enough
/// for gates and dashboards (did anything breach? how long was the
/// system degraded?) without embedding the full window series, which
/// lives in the bench's results JSON and incident snapshots. Plain data
/// so the manifest writer keeps zero dependencies on the health engine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Window width in virtual cycles.
    pub window: u64,
    /// Closed (full) windows evaluated.
    pub windows: u64,
    /// Declared objectives.
    pub objectives: u64,
    /// `slo.breach` signals emitted.
    pub breaches: u64,
    /// `slo.recover` signals emitted.
    pub recoveries: u64,
    /// Incident snapshots frozen by the flight recorder.
    pub incidents: u64,
    /// Final overall verdict (`"green"`, `"burning"`, or `"breached"`).
    pub verdict: String,
    /// Verdict-state reseeds performed for replica rejoins (schema v5;
    /// 0 in older manifests).
    pub reseeds: u64,
    /// Virtual cycles spent at each degradation tier floor, keyed by
    /// tier label (`"tier0"`, `"tier1"`, …), in label order.
    pub time_in_tier: Vec<(String, u64)>,
}

impl HealthSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window", Json::UInt(self.window)),
            ("windows", Json::UInt(self.windows)),
            ("objectives", Json::UInt(self.objectives)),
            ("breaches", Json::UInt(self.breaches)),
            ("recoveries", Json::UInt(self.recoveries)),
            ("incidents", Json::UInt(self.incidents)),
            ("verdict", Json::Str(self.verdict.clone())),
            ("reseeds", Json::UInt(self.reseeds)),
            (
                "time_in_tier",
                Json::Obj(
                    self.time_in_tier.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<HealthSummary> {
        let time_in_tier = match json.get("time_in_tier")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(HealthSummary {
            window: json.get("window")?.as_u64()?,
            windows: json.get("windows")?.as_u64()?,
            objectives: json.get("objectives")?.as_u64()?,
            breaches: json.get("breaches")?.as_u64()?,
            recoveries: json.get("recoveries")?.as_u64()?,
            incidents: json.get("incidents")?.as_u64()?,
            verdict: json.get("verdict")?.as_str()?.to_string(),
            // Absent before schema v5.
            reseeds: json.get("reseeds").and_then(Json::as_u64).unwrap_or(0),
            time_in_tier,
        })
    }
}

/// Provenance record for one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Schema version of this record (see [`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Bench binary name (e.g. `fig5_error_stats`).
    pub bench: String,
    /// Free-form configuration key/values (precision, arithmetic, sweep
    /// sizes, …) in insertion order.
    pub config: Vec<(String, String)>,
    /// PRNG seed, when the run is seeded.
    pub seed: Option<u64>,
    /// Whether the run used `--quick` (reduced sizes).
    pub quick: bool,
    /// The command-line arguments after the binary name.
    pub args: Vec<String>,
    /// `git describe --always --dirty` of the source tree, or
    /// `"unknown"` outside a git checkout.
    pub git_describe: String,
    /// Seconds since the Unix epoch at manifest creation.
    pub timestamp_unix: u64,
    /// Worker-thread count the run's `sc-par` pools use (the
    /// `SC_THREADS` contract; see [`default_par_threads`]). Recorded so
    /// perf numbers can be compared across machines.
    pub par_threads: u64,
    /// Wall-clock seconds the bench body took (filled in by
    /// [`crate::bench::bench_run`] on exit; 0 in manifests written by
    /// older versions).
    pub elapsed_seconds: f64,
    /// Tier-1 suite status from the `SC_TIER1_STATUS` environment
    /// variable (`"pass"`/`"fail"`), if the caller exported one.
    pub tier1_status: Option<String>,
    /// Artifact paths (CSVs, …) the run wrote.
    pub artifacts: Vec<String>,
    /// Metrics recorded during the run.
    pub metrics: MetricsSnapshot,
    /// Chrome-trace export summary, when the bench wrote one (schema
    /// v3; `None` in older manifests and trace-less benches).
    pub trace: Option<TraceSummary>,
    /// Per-category cycle attribution totals (`attr.cycles.*` counter
    /// values at exit), in name order. Empty before schema v3.
    pub attribution: Vec<(String, u64)>,
    /// Live-health rollup, when the bench ran the sc-health monitor
    /// (schema v4; `None` in older manifests and unmonitored benches).
    pub health: Option<HealthSummary>,
}

impl RunManifest {
    /// Creates a manifest for `bench`, capturing args, git state, the
    /// timestamp, and `SC_TIER1_STATUS` from the environment.
    pub fn capture(bench: &str) -> RunManifest {
        let args: Vec<String> = std::env::args().skip(1).collect();
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            bench: bench.to_string(),
            config: Vec::new(),
            seed: None,
            quick: args.iter().any(|a| a == "--quick"),
            args,
            git_describe: git_describe(),
            timestamp_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            par_threads: default_par_threads() as u64,
            elapsed_seconds: 0.0,
            tier1_status: std::env::var("SC_TIER1_STATUS").ok(),
            artifacts: Vec::new(),
            metrics: MetricsSnapshot::default(),
            trace: None,
            attribution: Vec::new(),
            health: None,
        }
    }

    /// Records a configuration key/value (last write wins per key).
    pub fn set_config(&mut self, key: &str, value: impl std::fmt::Display) {
        let value = value.to_string();
        if let Some(slot) = self.config.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.config.push((key.to_string(), value));
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::UInt(self.schema_version)),
            ("bench", Json::Str(self.bench.clone())),
            (
                "config",
                Json::Obj(
                    self.config.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
                ),
            ),
            ("seed", self.seed.map_or(Json::Null, Json::UInt)),
            ("quick", Json::Bool(self.quick)),
            ("args", Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect())),
            ("git_describe", Json::Str(self.git_describe.clone())),
            ("timestamp_unix", Json::UInt(self.timestamp_unix)),
            ("par_threads", Json::UInt(self.par_threads)),
            ("elapsed_seconds", Json::Num(self.elapsed_seconds)),
            (
                "tier1_status",
                self.tier1_status.as_ref().map_or(Json::Null, |s| Json::Str(s.clone())),
            ),
            ("artifacts", Json::Arr(self.artifacts.iter().map(|a| Json::Str(a.clone())).collect())),
            ("metrics", metrics_to_json(&self.metrics)),
            ("trace", self.trace.as_ref().map_or(Json::Null, TraceSummary::to_json)),
            (
                "attribution",
                Json::Obj(
                    self.attribution.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect(),
                ),
            ),
            ("health", self.health.as_ref().map_or(Json::Null, HealthSummary::to_json)),
        ])
    }

    /// Deserializes from the JSON written by [`RunManifest::to_json`].
    /// Returns `None` on shape mismatch.
    pub fn from_json(json: &Json) -> Option<RunManifest> {
        let strings = |v: &Json| -> Option<Vec<String>> {
            v.as_arr()?.iter().map(|s| s.as_str().map(str::to_string)).collect()
        };
        let config = match json.get("config")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(RunManifest {
            // Manifests written before versioning carry no field: they
            // are schema version 1 by definition.
            schema_version: json.get("schema_version").and_then(Json::as_u64).unwrap_or(1),
            bench: json.get("bench")?.as_str()?.to_string(),
            config,
            seed: match json.get("seed")? {
                Json::Null => None,
                v => Some(v.as_u64()?),
            },
            quick: json.get("quick")?.as_bool()?,
            args: strings(json.get("args")?)?,
            git_describe: json.get("git_describe")?.as_str()?.to_string(),
            timestamp_unix: json.get("timestamp_unix")?.as_u64()?,
            // Absent in manifests written before the parallel-execution
            // PR; default to 0 rather than rejecting them.
            par_threads: json.get("par_threads").and_then(Json::as_u64).unwrap_or(0),
            elapsed_seconds: json.get("elapsed_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            tier1_status: match json.get("tier1_status")? {
                Json::Null => None,
                v => Some(v.as_str()?.to_string()),
            },
            artifacts: strings(json.get("artifacts")?)?,
            metrics: metrics_from_json(json.get("metrics")?)?,
            // Schema v2 and earlier carry neither field.
            trace: match json.get("trace") {
                None | Some(Json::Null) => None,
                Some(v) => Some(TraceSummary::from_json(v)?),
            },
            attribution: match json.get("attribution") {
                None => Vec::new(),
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                    .collect::<Option<Vec<_>>>()?,
                Some(_) => return None,
            },
            // Schema v3 and earlier carry no health field.
            health: match json.get("health") {
                None | Some(Json::Null) => None,
                Some(v) => Some(HealthSummary::from_json(v)?),
            },
        })
    }

    /// Writes the manifest (pretty JSON) to `path`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_json(path, &self.to_json())
    }

    /// Reads a manifest back from `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or `InvalidData` if the file is not a
    /// valid manifest.
    pub fn read<P: AsRef<Path>>(path: P) -> io::Result<RunManifest> {
        let text = std::fs::read_to_string(path)?;
        let json = Json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        RunManifest::from_json(&json)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "not a RunManifest"))
    }
}

/// Parses an `SC_THREADS` value: `None` (unset/blank) means "use the
/// host's parallelism"; otherwise the value must be a positive integer.
///
/// # Errors
///
/// Returns a message naming the accepted form on anything else.
pub fn parse_par_threads(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "invalid SC_THREADS value {raw:?}: expected a positive integer (e.g. SC_THREADS=4) \
             or unset for the host's available parallelism"
        )),
    }
}

/// The `SC_THREADS` contract: the worker-thread count `sc-par` pools
/// default to, and the value recorded as [`RunManifest::par_threads`] —
/// `SC_THREADS` when set to a positive integer, otherwise the host's
/// available parallelism (1 if that cannot be determined).
///
/// This lives here rather than in `sc-par` because the manifest writer
/// must not depend on the pool; `sc-par` calls this function so the two
/// always agree.
///
/// # Panics
///
/// Panics when `SC_THREADS` is set to anything other than a positive
/// integer — a malformed thread count silently falling back to the
/// host's parallelism would change results without a trace.
pub fn default_par_threads() -> usize {
    let env = std::env::var("SC_THREADS").ok();
    match parse_par_threads(env.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        Err(e) => panic!("{e}"),
    }
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn sample() -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            bench: "fig5_error_stats".to_string(),
            config: vec![
                ("precision".to_string(), "8".to_string()),
                ("arithmetic".to_string(), "proposed".to_string()),
            ],
            seed: Some(0xDEAD_BEEF),
            quick: true,
            args: vec!["--quick".to_string(), "--csv".to_string()],
            git_describe: "v0-12-gabc123-dirty".to_string(),
            timestamp_unix: 1_754_000_000,
            par_threads: 4,
            elapsed_seconds: 1.25,
            tier1_status: Some("pass".to_string()),
            artifacts: vec!["results/fig5.csv".to_string()],
            metrics: MetricsSnapshot {
                counters: vec![("accel.traffic.input_words".to_string(), 1024)],
                gauges: vec![("train.accuracy".to_string(), 0.97)],
                histograms: vec![(
                    "tile.cycles".to_string(),
                    HistogramSnapshot {
                        bounds: vec![64, 512],
                        buckets: vec![5, 2, 0],
                        count: 7,
                        sum: 700,
                        max: 300,
                    },
                )],
            },
            trace: Some(TraceSummary {
                file: "results/fig5.trace.json".to_string(),
                requests: 12,
                spans: 80,
                total_cycles: 4096,
                attributed_cycles: 4096,
            }),
            attribution: vec![
                ("attr.cycles.mac_stream".to_string(), 3000),
                ("attr.cycles.queue_wait".to_string(), 1096),
            ],
            health: Some(HealthSummary {
                window: 4096,
                windows: 12,
                objectives: 3,
                breaches: 1,
                recoveries: 1,
                incidents: 1,
                verdict: "green".to_string(),
                reseeds: 2,
                time_in_tier: vec![("tier0".to_string(), 40000), ("tier1".to_string(), 9152)],
            }),
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let reparsed = Json::parse(&m.to_json().render_pretty()).unwrap();
        assert_eq!(RunManifest::from_json(&reparsed), Some(m));
    }

    #[test]
    fn manifest_round_trips_through_a_file() {
        let m = sample();
        let path = std::env::temp_dir().join("sc_telemetry_manifest_test.json");
        m.write(&path).unwrap();
        assert_eq!(RunManifest::read(&path).unwrap(), m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn null_fields_round_trip() {
        let mut m = sample();
        m.seed = None;
        m.tier1_status = None;
        m.trace = None;
        m.health = None;
        let reparsed = Json::parse(&m.to_json().render()).unwrap();
        assert_eq!(RunManifest::from_json(&reparsed), Some(m));
    }

    #[test]
    fn v3_manifests_without_health_still_parse() {
        let mut m = sample();
        let mut json = m.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "health");
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "schema_version") {
                *v = Json::UInt(3);
            }
        }
        let parsed = RunManifest::from_json(&json).expect("v3 manifests must stay readable");
        m.schema_version = 3;
        m.health = None;
        assert_eq!(parsed, m);
    }

    #[test]
    fn v2_manifests_without_trace_fields_still_parse() {
        let mut m = sample();
        let mut json = m.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "trace" && k != "attribution" && k != "health");
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "schema_version") {
                *v = Json::UInt(2);
            }
        }
        let parsed = RunManifest::from_json(&json).expect("v2 manifests must stay readable");
        m.schema_version = 2;
        m.trace = None;
        m.attribution = Vec::new();
        m.health = None;
        assert_eq!(parsed, m);
    }

    #[test]
    fn trace_summary_coverage() {
        let t = sample().trace.unwrap();
        assert!((t.coverage() - 1.0).abs() < 1e-12);
        let empty = TraceSummary {
            file: String::new(),
            requests: 0,
            spans: 0,
            total_cycles: 0,
            attributed_cycles: 0,
        };
        assert_eq!(empty.coverage(), 1.0, "no cycles means nothing unexplained");
    }

    #[test]
    fn set_config_is_last_write_wins() {
        let mut m = sample();
        m.set_config("precision", 16);
        assert_eq!(m.config[0], ("precision".to_string(), "16".to_string()));
        m.set_config("sweep", "full");
        assert_eq!(m.config.len(), 3);
    }

    #[test]
    fn capture_reads_environment() {
        let m = RunManifest::capture("unit_test");
        assert_eq!(m.bench, "unit_test");
        assert!(!m.git_describe.is_empty());
        assert!(m.timestamp_unix > 0);
        assert!(m.par_threads >= 1, "par_threads must resolve to at least one worker");
        assert_eq!(m.elapsed_seconds, 0.0, "elapsed is filled in by bench_run on exit");
    }

    #[test]
    fn manifests_without_parallel_fields_still_parse() {
        // A pre-parallel-PR manifest: no par_threads / elapsed_seconds.
        let mut m = sample();
        let mut json = m.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| {
                k != "par_threads" && k != "elapsed_seconds" && k != "schema_version"
            });
        }
        let parsed = RunManifest::from_json(&json).expect("old manifests must stay readable");
        m.par_threads = 0;
        m.elapsed_seconds = 0.0;
        m.schema_version = 1;
        assert_eq!(parsed, m);
    }

    #[test]
    fn capture_stamps_the_current_schema_version() {
        let m = RunManifest::capture("unit_test");
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        let json = Json::parse(&m.to_json().render()).unwrap();
        assert_eq!(
            json.get("schema_version").and_then(Json::as_u64),
            Some(MANIFEST_SCHEMA_VERSION)
        );
    }

    #[test]
    fn default_par_threads_is_positive() {
        assert!(default_par_threads() >= 1);
    }

    #[test]
    fn par_threads_parses_positive_integers_and_blanks() {
        assert_eq!(parse_par_threads(None), Ok(None));
        assert_eq!(parse_par_threads(Some("")), Ok(None));
        assert_eq!(parse_par_threads(Some("   ")), Ok(None));
        assert_eq!(parse_par_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_par_threads(Some(" 7 ")), Ok(Some(7)));
    }

    #[test]
    fn par_threads_rejects_malformed_values_naming_the_accepted_form() {
        for bad in ["0", "-2", "four", "4.5", "4 threads"] {
            let err = parse_par_threads(Some(bad)).unwrap_err();
            assert!(err.contains("invalid SC_THREADS value"), "{err}");
            assert!(err.contains("positive integer"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }
}
