//! The shared bench harness.
//!
//! Every `sc-bench` binary wraps its body in [`bench_run`], which
//! standardizes the preamble, `--quick`/`--<flag> <value>` parsing,
//! tracing setup from `SC_TRACE`, metric collection, and — on exit —
//! writes a [`RunManifest`] into `results/` next to whatever artifacts
//! the run produced.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::manifest::{RunManifest, TraceSummary};
use crate::metrics;
use crate::span;
use crate::trace::SpanTree;

/// Per-run context handed to the body of [`bench_run`].
#[derive(Debug)]
pub struct BenchCtx {
    manifest: RunManifest,
    out_dir: PathBuf,
}

impl BenchCtx {
    fn new(name: &str, out_dir: &Path) -> BenchCtx {
        BenchCtx { manifest: RunManifest::capture(name), out_dir: out_dir.to_path_buf() }
    }

    /// Whether `--quick` was passed (reduced-size run).
    pub fn quick(&self) -> bool {
        self.manifest.quick
    }

    /// Returns the value following `--<name>` parsed as `T`, if present.
    ///
    /// An absent flag is silently `None`; a flag whose value is missing
    /// or fails to parse is *also* `None` but warns on stderr and bumps
    /// the `bench.arg_warnings` counter — a typo'd `--samples 10O` must
    /// not silently run with the built-in default, and the counter makes
    /// the drift visible to `sc_report` (the harness registers it at 0
    /// on every run, so a nonzero value diffs against the baseline).
    pub fn arg_value<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        let mut args = self.manifest.args.iter();
        while let Some(a) = args.next() {
            if *a != flag {
                continue;
            }
            return match args.next() {
                None => {
                    eprintln!("warning: {flag} is missing its value; using the default");
                    metrics::counter("bench.arg_warnings").incr(1);
                    None
                }
                Some(v) => match v.parse() {
                    Ok(parsed) => Some(parsed),
                    Err(_) => {
                        eprintln!(
                            "warning: could not parse {flag} value {v:?} as {}; using the default",
                            std::any::type_name::<T>()
                        );
                        metrics::counter("bench.arg_warnings").incr(1);
                        None
                    }
                },
            };
        }
        None
    }

    /// Records a configuration key/value into the run manifest
    /// (precision, arithmetic, sweep sizes, …).
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) {
        self.manifest.set_config(key, value);
    }

    /// Records the PRNG seed into the run manifest.
    pub fn seed(&mut self, seed: u64) {
        self.manifest.seed = Some(seed);
    }

    /// Writes a CSV artifact and records it in the manifest.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv<P: AsRef<Path>>(
        &mut self,
        path: P,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> io::Result<()> {
        crate::export::write_csv(&path, header, rows)?;
        self.record_artifact(&path);
        println!("wrote {}", path.as_ref().display());
        Ok(())
    }

    /// Records an artifact path the run wrote through other means.
    pub fn record_artifact<P: AsRef<Path>>(&mut self, path: P) {
        self.manifest.artifacts.push(path.as_ref().display().to_string());
    }

    /// Writes the bench's bare results JSON (`<out_dir>/<bench>.json`)
    /// and records it as a manifest artifact, stamping
    /// [`crate::export::RESULTS_SCHEMA_VERSION`] via
    /// [`crate::export::with_schema_version`] (top-level arrays are
    /// wrapped as `{"schema_version", "rows"}`). All benches route
    /// their summary rows through this so the `results/` layout stays
    /// uniform and versioned.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn results_json(&mut self, value: &Json) -> io::Result<()> {
        let path = self.out_dir.join(format!("{}.json", self.manifest.bench));
        crate::export::write_json(&path, &crate::export::with_schema_version(value))?;
        self.record_artifact(&path);
        println!("wrote {}", path.display());
        Ok(())
    }

    /// Exports request span trees as a Chrome Trace Format file
    /// (`<out_dir>/<bench>.trace.json`, loadable in Perfetto /
    /// `chrome://tracing`), records it as an artifact, and fills the
    /// manifest's [`TraceSummary`]. Each `(name, trees)` pair becomes
    /// one process lane group; display lanes are labelled after this
    /// run's `sc-par` workers.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_trace(&mut self, processes: &[(&str, &[SpanTree])]) -> io::Result<PathBuf> {
        let path = self.out_dir.join(format!("{}.trace.json", self.manifest.bench));
        let json = crate::chrome::chrome_trace(processes, self.manifest.par_threads as usize);
        crate::export::write_json(&path, &json)?;
        self.record_artifact(&path);
        let mut summary = TraceSummary {
            file: path.display().to_string(),
            requests: 0,
            spans: 0,
            total_cycles: 0,
            attributed_cycles: 0,
        };
        for (_, trees) in processes {
            for tree in *trees {
                summary.requests += 1;
                summary.spans += tree.spans().len() as u64;
                summary.total_cycles += tree.total_cycles();
                summary.attributed_cycles += tree.leaf_cycles();
            }
        }
        println!(
            "wrote {} ({} request(s), {} span(s), {:.1}% of cycles attributed)",
            path.display(),
            summary.requests,
            summary.spans,
            summary.coverage() * 100.0
        );
        self.manifest.trace = Some(summary);
        Ok(path)
    }

    /// Attaches the live-health rollup to the run manifest (benches
    /// that drive the sc-health monitor call this with their final
    /// summary; last write wins).
    pub fn health(&mut self, summary: crate::manifest::HealthSummary) {
        self.manifest.health = Some(summary);
    }

    /// Where this run's manifest will be written.
    pub fn manifest_path(&self) -> PathBuf {
        self.out_dir.join(format!("{}.manifest.json", self.manifest.bench))
    }
}

/// Runs one bench binary body with telemetry around it.
///
/// * prints the standard preamble (`title`, underlined, with a
///   `--quick` note when active),
/// * installs the stderr tracer if `SC_TRACE=stderr`,
/// * resets and enables metrics for the duration,
/// * wraps the body in a top-level span named `name`,
/// * and finally snapshots the metrics into a [`RunManifest`] written to
///   `results/<name>.manifest.json`.
pub fn bench_run(name: &'static str, title: &str, body: impl FnOnce(&mut BenchCtx)) {
    bench_run_in(name, title, Path::new("results"), body);
}

/// [`bench_run`] with an explicit output directory (exposed for tests).
#[doc(hidden)]
pub fn bench_run_in(
    name: &'static str,
    title: &str,
    out_dir: &Path,
    body: impl FnOnce(&mut BenchCtx),
) {
    span::init_from_env();
    metrics::reset();
    metrics::set_enabled(true);
    // Register the CLI-drift counter up front so every manifest (and
    // therefore every baseline) carries it at 0: a later warning then
    // diffs as a regressed value, not an ignorable added metric.
    let _ = metrics::counter("bench.arg_warnings");

    let mut ctx = BenchCtx::new(name, out_dir);
    // A result produced under fault injection must say so: the spec is
    // recorded verbatim (sc-fault reads the same variable), keeping
    // faulted manifests attributable. Empty/zero-rate specs still
    // record — the run is bitwise clean, but the intent is visible.
    if let Ok(spec) = std::env::var("SC_FAULTS") {
        ctx.config("sc_faults", spec);
    }
    println!("{title}");
    println!("{}", "=".repeat(title.chars().count().min(72)));
    if ctx.quick() {
        println!("(--quick: reduced-size run)");
    }
    println!();

    let started = std::time::Instant::now();
    {
        let _run = crate::span!(name);
        body(&mut ctx);
    }
    ctx.manifest.elapsed_seconds = started.elapsed().as_secs_f64();

    metrics::set_enabled(false);
    ctx.manifest.metrics = metrics::snapshot();
    // The per-category cycle-attribution rollup gets its own manifest
    // field so report tooling need not know the counter namespace.
    ctx.manifest.attribution = ctx
        .manifest
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("attr.cycles."))
        .cloned()
        .collect();
    let path = ctx.manifest_path();
    match ctx.manifest.write(&path) {
        Ok(()) => println!("\nmanifest: {}", path.display()),
        Err(e) => eprintln!("warning: could not write manifest {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_writes_manifest_with_metrics_and_artifacts() {
        let _g = crate::test_guard();
        let dir = std::env::temp_dir().join("sc_telemetry_bench_test");
        let _ = std::fs::remove_dir_all(&dir);

        bench_run_in("unit_bench", "Unit bench", &dir, |ctx| {
            ctx.config("precision", 8);
            ctx.seed(42);
            crate::counter("unit.bench.counter").incr(3);
            ctx.write_csv(dir.join("unit.csv"), &["a"], &[vec!["1".to_string()]]).unwrap();
        });

        let m = RunManifest::read(dir.join("unit_bench.manifest.json")).unwrap();
        assert_eq!(m.bench, "unit_bench");
        assert!(m.par_threads >= 1, "manifest must record the thread count");
        assert!(m.elapsed_seconds >= 0.0 && m.elapsed_seconds < 60.0, "{}", m.elapsed_seconds);
        assert_eq!(m.seed, Some(42));
        assert!(m.config.iter().any(|(k, v)| k == "precision" && v == "8"));
        assert_eq!(m.artifacts.len(), 1);
        assert!(m.metrics.counters.iter().any(|(k, v)| k == "unit.bench.counter" && *v == 3));
        assert!(!metrics::enabled(), "bench_run must disable metrics on exit");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_run_exports_traces_results_json_and_attribution() {
        use crate::trace::{CycleCategory, TraceId};
        let _g = crate::test_guard();
        let dir = std::env::temp_dir().join("sc_telemetry_bench_trace_test");
        let _ = std::fs::remove_dir_all(&dir);

        bench_run_in("unit_trace_bench", "Unit trace bench", &dir, |ctx| {
            let trace = TraceId::derive(7, 0);
            let mut t = SpanTree::new(trace, "request 0", CycleCategory::Request, 0, 100);
            let root = t.root().id;
            t.add(root, "queue wait", CycleCategory::QueueWait, 0, 10);
            t.add(root, "mac", CycleCategory::MacStream, 10, 100);
            t.validate().unwrap();
            crate::trace::record_attribution(&t.attribution());
            ctx.write_trace(&[("storm", std::slice::from_ref(&t))]).unwrap();
            ctx.results_json(&Json::obj(vec![("ok", Json::Bool(true))])).unwrap();
        });

        let m = RunManifest::read(dir.join("unit_trace_bench.manifest.json")).unwrap();
        let trace = m.trace.expect("write_trace must fill the manifest summary");
        assert_eq!(trace.requests, 1);
        assert_eq!(trace.spans, 3);
        assert_eq!(trace.total_cycles, 100);
        assert_eq!(trace.attributed_cycles, 100, "leaves partition the root");
        assert!((trace.coverage() - 1.0).abs() < 1e-12);
        assert!(Path::new(&trace.file).exists());
        assert_eq!(m.artifacts.len(), 2, "trace + results JSON recorded");
        assert!(m.attribution.iter().any(|(k, v)| k == "attr.cycles.queue_wait" && *v == 10));
        assert!(m.attribution.iter().any(|(k, v)| k == "attr.cycles.mac_stream" && *v == 90));
        // The bare results JSON parses back.
        let raw = std::fs::read_to_string(dir.join("unit_trace_bench.json")).unwrap();
        assert_eq!(Json::parse(&raw).unwrap().get("ok").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arg_value_parses_from_captured_args() {
        let _g = crate::test_guard();
        let ctx = BenchCtx::new("x", Path::new("results"));
        assert_eq!(ctx.arg_value::<u32>("definitely-not-a-flag"), None);
    }

    #[test]
    fn arg_value_warnings_are_counted_for_cli_drift_detection() {
        let _g = crate::test_guard();
        metrics::reset();
        metrics::set_enabled(true);
        let warnings = crate::counter("bench.arg_warnings");
        let before = warnings.get();
        let mut ctx = BenchCtx::new("x", Path::new("results"));
        ctx.manifest.args =
            vec!["--rate".to_string(), "not-a-number".to_string(), "--dangling".to_string()];
        assert_eq!(ctx.arg_value::<u64>("rate"), None);
        assert_eq!(ctx.arg_value::<u32>("dangling"), None);
        // Absent flags are not drift and must stay uncounted.
        assert_eq!(ctx.arg_value::<u32>("absent"), None);
        assert_eq!(warnings.get() - before, 2, "one count per emitted warning");
        metrics::set_enabled(false);
    }

    #[test]
    fn arg_value_handles_well_formed_malformed_and_truncated_flags() {
        let _g = crate::test_guard();
        let mut ctx = BenchCtx::new("x", Path::new("results"));
        ctx.manifest.args = vec![
            "--samples".to_string(),
            "100".to_string(),
            "--rate".to_string(),
            "not-a-number".to_string(),
            "--negative".to_string(),
            "-3".to_string(),
            "--dangling".to_string(),
        ];
        assert_eq!(ctx.arg_value::<u32>("samples"), Some(100));
        // Malformed for the requested type: None (with a warning), not a
        // silent fall-through to some other arg.
        assert_eq!(ctx.arg_value::<u64>("rate"), None);
        assert_eq!(ctx.arg_value::<f64>("rate"), None);
        // Parseable under a different type: the caller's type decides.
        assert_eq!(ctx.arg_value::<u32>("negative"), None);
        assert_eq!(ctx.arg_value::<i32>("negative"), Some(-3));
        // Flag at the end of the line with no value.
        assert_eq!(ctx.arg_value::<u32>("dangling"), None);
        // Absent flag stays quietly None.
        assert_eq!(ctx.arg_value::<u32>("absent"), None);
    }
}
