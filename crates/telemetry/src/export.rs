//! Dependency-free CSV and JSON file writers.
//!
//! The CSV writer is the single escaping implementation for the whole
//! workspace (`sc_bench::csv::write_csv` is a thin re-export of it), and
//! metric snapshots serialize to [`crate::json::Json`] for embedding in
//! run manifests.

use std::io::{self, Write};
use std::path::Path;

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Escapes one CSV field: fields containing separators, quotes, or
/// newlines are quoted, with embedded quotes doubled.
pub fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes a header and rows to a CSV file, creating parent directories
/// as needed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", header.iter().map(|h| escape_csv(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(f, "{}", row.iter().map(|c| escape_csv(c)).collect::<Vec<_>>().join(","))?;
    }
    f.flush()
}

/// Writes a JSON value to a file (pretty-printed), creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_json<P: AsRef<Path>>(path: P, value: &Json) -> io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, value.render_pretty())
}

/// Schema version stamped into every bare results JSON written via
/// [`write_results_json`] / `BenchCtx::results_json` (validated by
/// ci.sh alongside the manifest schema).
pub const RESULTS_SCHEMA_VERSION: u64 = 1;

/// Stamps [`RESULTS_SCHEMA_VERSION`] onto a bare results value: an
/// object gains a leading `schema_version` key (existing keys win — a
/// bench may pin its own), and any other shape is wrapped as
/// `{"schema_version": N, "rows": <value>}` so top-level arrays are
/// versioned too.
pub fn with_schema_version(value: &Json) -> Json {
    match value {
        Json::Obj(pairs) => {
            if pairs.iter().any(|(k, _)| k == "schema_version") {
                return value.clone();
            }
            let mut out = vec![("schema_version".to_string(), Json::UInt(RESULTS_SCHEMA_VERSION))];
            out.extend(pairs.iter().cloned());
            Json::Obj(out)
        }
        other => Json::obj(vec![
            ("schema_version", Json::UInt(RESULTS_SCHEMA_VERSION)),
            ("rows", other.clone()),
        ]),
    }
}

/// Canonical path of a bench's bare results file:
/// `results/<bench>.json`, next to its manifest.
pub fn results_json_path(bench: &str) -> std::path::PathBuf {
    Path::new("results").join(format!("{bench}.json"))
}

/// Writes a bench's bare results JSON to [`results_json_path`] and
/// returns the path written, stamping [`RESULTS_SCHEMA_VERSION`] via
/// [`with_schema_version`]. This is the single writer all benches
/// share so the `results/` layout stays uniform; prefer
/// `BenchCtx::results_json`, which also records the file as a manifest
/// artifact.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_results_json(bench: &str, value: &Json) -> io::Result<std::path::PathBuf> {
    let path = results_json_path(bench);
    write_json(&path, &with_schema_version(value))?;
    Ok(path)
}

/// Serializes a metrics snapshot to JSON.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(snap.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect()),
        ),
        (
            "gauges",
            Json::Obj(snap.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
        ),
        (
            "histograms",
            Json::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj(vec![
                                (
                                    "bounds",
                                    Json::Arr(h.bounds.iter().map(|&b| Json::UInt(b)).collect()),
                                ),
                                (
                                    "buckets",
                                    Json::Arr(h.buckets.iter().map(|&b| Json::UInt(b)).collect()),
                                ),
                                ("count", Json::UInt(h.count)),
                                ("sum", Json::UInt(h.sum)),
                                ("max", Json::UInt(h.max)),
                                // Derived quantiles, recomputed on read:
                                // written for human and tooling
                                // convenience only.
                                ("p50", Json::UInt(h.p50())),
                                ("p90", Json::UInt(h.p90())),
                                ("p99", Json::UInt(h.p99())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserializes a metrics snapshot from the JSON written by
/// [`metrics_to_json`]. Returns `None` on shape mismatch.
pub fn metrics_from_json(json: &Json) -> Option<MetricsSnapshot> {
    let obj_pairs = |v: &Json| match v {
        Json::Obj(pairs) => Some(pairs.clone()),
        _ => None,
    };
    let counters = obj_pairs(json.get("counters")?)?
        .into_iter()
        .map(|(k, v)| Some((k, v.as_u64()?)))
        .collect::<Option<Vec<_>>>()?;
    let gauges = obj_pairs(json.get("gauges")?)?
        .into_iter()
        .map(|(k, v)| Some((k, v.as_f64()?)))
        .collect::<Option<Vec<_>>>()?;
    let histograms = obj_pairs(json.get("histograms")?)?
        .into_iter()
        .map(|(k, v)| {
            let u64s = |field: &str| -> Option<Vec<u64>> {
                v.get(field)?.as_arr()?.iter().map(Json::as_u64).collect()
            };
            Some((
                k,
                HistogramSnapshot {
                    bounds: u64s("bounds")?,
                    buckets: u64s("buckets")?,
                    count: v.get("count")?.as_u64()?,
                    sum: v.get("sum")?.as_u64()?,
                    // Absent in snapshots written before quantile
                    // support; the p50/p90/p99 keys are derived and
                    // deliberately ignored here.
                    max: v.get("max").and_then(Json::as_u64).unwrap_or(0),
                },
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(MetricsSnapshot { counters, gauges, histograms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping_rules() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn csv_writes_header_and_rows() {
        let path = std::env::temp_dir().join("sc_telemetry_csv_test.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_snapshot_round_trips_through_json() {
        let snap = MetricsSnapshot {
            counters: vec![("accel.dram.words".into(), u64::MAX), ("cycles".into(), 42)],
            gauges: vec![("train.loss".into(), 0.125)],
            histograms: vec![(
                "tile.cycles".into(),
                HistogramSnapshot {
                    bounds: vec![16, 256, 4096],
                    buckets: vec![1, 0, 3, 2],
                    count: 6,
                    sum: 9001,
                    max: 8000,
                },
            )],
        };
        let json = metrics_to_json(&snap);
        let reparsed = Json::parse(&json.render_pretty()).unwrap();
        assert_eq!(metrics_from_json(&reparsed), Some(snap));
    }

    #[test]
    fn histogram_json_carries_derived_quantiles() {
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![(
                "serve.latency".into(),
                HistogramSnapshot {
                    bounds: vec![1, 2, 4, 8],
                    buckets: vec![0, 0, 4, 0, 0],
                    count: 4,
                    sum: 12,
                    max: 3,
                },
            )],
        };
        let json = metrics_to_json(&snap);
        let h = json.get("histograms").and_then(|hs| hs.get("serve.latency")).unwrap();
        assert_eq!(h.get("max").and_then(Json::as_u64), Some(3));
        assert_eq!(h.get("p50").and_then(Json::as_u64), Some(3), "bucket bound clamps to max");
        assert_eq!(h.get("p99").and_then(Json::as_u64), Some(3));
        // Snapshots from before quantile support (no max key) parse
        // with max defaulting to 0.
        let mut legacy = json.clone();
        if let Json::Obj(pairs) = &mut legacy {
            if let Some((_, Json::Obj(hs))) = pairs.iter_mut().find(|(k, _)| k == "histograms") {
                if let Some((_, Json::Obj(fields))) =
                    hs.iter_mut().find(|(k, _)| k == "serve.latency")
                {
                    fields.retain(|(k, _)| k != "max" && !k.starts_with('p'));
                }
            }
        }
        let parsed = metrics_from_json(&legacy).unwrap();
        assert_eq!(parsed.histograms[0].1.max, 0);
    }
}
