//! Structured span tracing with nesting, wall time, and a pluggable
//! global subscriber.
//!
//! The fast path is engineered for instrumented hot loops: when no
//! subscriber is installed (the default), [`Span::enter`] is one relaxed
//! atomic load and returns an inert guard — no clock read, no
//! formatting, no allocation. Field strings are built lazily only when a
//! subscriber is active.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Whether any subscriber is installed (fast-path gate).
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed subscriber, if any.
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Receives span and event notifications.
pub trait Subscriber: Send + Sync {
    /// A span was entered at nesting `depth` (0 = top level).
    fn span_enter(&self, name: &str, fields: &str, depth: usize);
    /// A span closed after `nanos` wall-clock nanoseconds.
    fn span_exit(&self, name: &str, fields: &str, depth: usize, nanos: u128);
    /// A point event fired inside the current span nesting.
    fn event(&self, name: &str, fields: &str, depth: usize);
}

/// Installs `sub` as the global subscriber (replacing any previous one).
pub fn set_subscriber(sub: Arc<dyn Subscriber>) {
    // Poison-proof: a subscriber panicking mid-notification must not
    // wedge every later install/clear behind a poisoned lock.
    *SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner()) = Some(sub);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the global subscriber; tracing returns to the inert fast
/// path.
pub fn clear_subscriber() {
    ACTIVE.store(false, Ordering::Release);
    *SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Whether a subscriber is currently installed.
#[inline]
pub fn tracing_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs the subscriber named by the `SC_TRACE` environment variable
/// (`stderr` → [`StderrSubscriber`]; anything else → none). Returns
/// whether one was installed.
pub fn init_from_env() -> bool {
    match std::env::var("SC_TRACE").as_deref() {
        Ok("stderr") => {
            set_subscriber(Arc::new(StderrSubscriber));
            true
        }
        _ => false,
    }
}

fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    if let Some(sub) = SUBSCRIBER.read().unwrap_or_else(|p| p.into_inner()).as_ref() {
        f(sub.as_ref());
    }
}

/// An RAII span guard: notifies the subscriber on creation and, with the
/// measured wall time, on drop.
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing is inactive (inert guard).
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    fields: String,
    depth: usize,
    start: Instant,
}

impl Span {
    /// Enters a span. `fields` is built only if tracing is active.
    pub fn enter(name: &'static str, fields: impl FnOnce() -> String) -> Span {
        if !tracing_active() {
            return Span { live: None };
        }
        let fields = fields();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        with_subscriber(|s| s.span_enter(name, &fields, depth));
        Span { live: Some(LiveSpan { name, fields, depth, start: Instant::now() }) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let nanos = live.start.elapsed().as_nanos();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            with_subscriber(|s| s.span_exit(live.name, &live.fields, live.depth, nanos));
        }
    }
}

/// Fires a point event. `fields` is built only if tracing is active.
pub fn emit_event(name: &'static str, fields: impl FnOnce() -> String) {
    if !tracing_active() {
        return;
    }
    let fields = fields();
    let depth = DEPTH.with(|d| d.get());
    with_subscriber(|s| s.event(name, &fields, depth));
}

/// Opens a wall-clock-timed, nested span; the returned guard closes it
/// on drop.
///
/// ```
/// let _layer = sc_telemetry::span!("layer", 3usize);
/// {
///     let _tile = sc_telemetry::span!("tile"); // nested one level deeper
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name, String::new)
    };
    ($name:expr, $($field:expr),+ $(,)?) => {
        $crate::span::Span::enter($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() { s.push(' '); }
                s.push_str(concat!(stringify!($field), "="));
                s.push_str(&format!("{:?}", &$field));
            )+
            s
        })
    };
}

/// Fires a point event with optional fields (same syntax as [`span!`]).
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::span::emit_event($name, String::new)
    };
    ($name:expr, $($field:expr),+ $(,)?) => {
        $crate::span::emit_event($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() { s.push(' '); }
                s.push_str(concat!(stringify!($field), "="));
                s.push_str(&format!("{:?}", &$field));
            )+
            s
        })
    };
}

/// Renders spans/events to stderr with indentation for nesting.
#[derive(Debug, Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn span_enter(&self, name: &str, fields: &str, depth: usize) {
        eprintln!("{:indent$}> {name} {fields}", "", indent = depth * 2);
    }

    fn span_exit(&self, name: &str, _fields: &str, depth: usize, nanos: u128) {
        eprintln!("{:indent$}< {name} [{:.3} ms]", "", nanos as f64 / 1e6, indent = depth * 2);
    }

    fn event(&self, name: &str, fields: &str, depth: usize) {
        eprintln!("{:indent$}* {name} {fields}", "", indent = depth * 2);
    }
}

/// One record captured by [`CollectingSubscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Record kind.
    pub kind: RecordKind,
    /// Span or event name.
    pub name: String,
    /// Formatted `key=value` fields.
    pub fields: String,
    /// Nesting depth at the time.
    pub depth: usize,
    /// Wall time in nanoseconds (exit records only, else 0).
    pub nanos: u128,
}

/// What a [`SpanRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Span entry.
    Enter,
    /// Span exit (carries wall time).
    Exit,
    /// Point event.
    Event,
}

/// Collects records silently for later inspection (used by tests and by
/// the bench harness to attach traces to artifacts).
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<SpanRecord>>,
}

impl CollectingSubscriber {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of everything collected so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn push(&self, kind: RecordKind, name: &str, fields: &str, depth: usize, nanos: u128) {
        self.records.lock().unwrap_or_else(|p| p.into_inner()).push(SpanRecord {
            kind,
            name: name.to_string(),
            fields: fields.to_string(),
            depth,
            nanos,
        });
    }
}

impl Subscriber for CollectingSubscriber {
    fn span_enter(&self, name: &str, fields: &str, depth: usize) {
        self.push(RecordKind::Enter, name, fields, depth, 0);
    }

    fn span_exit(&self, name: &str, fields: &str, depth: usize, nanos: u128) {
        self.push(RecordKind::Exit, name, fields, depth, nanos);
    }

    fn event(&self, name: &str, fields: &str, depth: usize) {
        self.push(RecordKind::Event, name, fields, depth, nanos_zero());
    }
}

fn nanos_zero() -> u128 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_no_subscriber() {
        let _g = crate::test_guard();
        clear_subscriber();
        let s = crate::span!("quiet", 1u32);
        assert!(s.live.is_none());
        drop(s);
        crate::event!("nothing");
    }

    #[test]
    fn collects_nested_spans_with_depth_and_time() {
        let _g = crate::test_guard();
        let collector = Arc::new(CollectingSubscriber::new());
        set_subscriber(collector.clone());
        {
            let _outer = crate::span!("outer", 7u32);
            {
                let _inner = crate::span!("inner");
                crate::event!("mark", 42u64);
            }
        }
        clear_subscriber();
        let recs = collector.records();
        let names: Vec<(&RecordKind, &str, usize)> =
            recs.iter().map(|r| (&r.kind, r.name.as_str(), r.depth)).collect();
        assert_eq!(
            names,
            vec![
                (&RecordKind::Enter, "outer", 0),
                (&RecordKind::Enter, "inner", 1),
                (&RecordKind::Event, "mark", 2),
                (&RecordKind::Exit, "inner", 1),
                (&RecordKind::Exit, "outer", 0),
            ]
        );
        assert!(recs[0].fields.contains("7u32=7") || recs[0].fields.contains("=7"));
        // Exit records carry a measured (possibly zero on coarse clocks)
        // wall time; enters don't.
        assert_eq!(recs[1].nanos, 0);
    }
}
