//! Deterministic observability plane: a bounded per-request event log.
//!
//! The serving layer finalizes 10⁵–10⁶ requests per storm, and BISC
//! latency is data-dependent (`t = Σ|2^(N-1)·w|`), so the latency
//! distribution is heavy-tailed *by construction* — the interesting
//! question is never "what was the mean" but "which requests made p99
//! spike, and where did their cycles go". This module answers it in
//! **O(windows + samples)** memory, not O(requests):
//!
//! * [`EventRecord`] — one compact record per finalized request: trace
//!   id, replica (shard), degradation tier, outcome, retries/hedges,
//!   deadline slack, latency, and the full 14-category
//!   [`CycleAttribution`].
//! * [`ObsLog`] — the streaming accumulator. Each record updates
//!   tumbling virtual-clock windows, per-dimension aggregates
//!   (outcome / tier / replica), a deterministic reservoir sample, an
//!   exact top-k-slowest set, per-latency-bucket **exemplars**, and a
//!   folded-stack profile — then is dropped. Nothing in here scales
//!   with the request count.
//! * [`FoldedStacks`] — inferno/speedscope-compatible folded stacks
//!   (`frame;frame;frame cycles`) accumulated from request span trees;
//!   the input to differential cycle-flamegraph profiling.
//! * [`ObsView`] — the query engine over a written log:
//!   top-k-slowest-with-exemplars, attribution breakdowns, and
//!   windowed goodput/p99 series, all rendered as deterministic text.
//!
//! ## Determinism
//!
//! Every sampling decision is a counter-keyed SplitMix64 draw
//! (Algorithm R keyed on the per-stream record index — never wall
//! clock, never thread identity), and every aggregate lives in a
//! `BTreeMap`. Two runs of the same workload therefore serialize to
//! **byte-identical** logs at any `SC_THREADS` and under either
//! `SC_ENGINE` — the property the ci.sh obs gate asserts.
//!
//! ## Latency semantics
//!
//! Counts cover every finalization; latency statistics (buckets,
//! quantiles, exemplars, top-k) cover **completed** requests only,
//! matching the `serve.latency` registry histogram and
//! `latency_percentile` on the serve reports.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::metrics::log2_bounds;
use crate::trace::{fnv1a, split_mix, CycleAttribution, CycleCategory, SpanTree};

/// Schema version stamped into the event-log header (and validated by
/// the ci.sh obs gate alongside the manifest schema).
pub const OBS_SCHEMA_VERSION: u64 = 1;

/// The outcome name [`EventRecord`]s use for completed requests.
pub const OUTCOME_COMPLETED: &str = "completed";

fn hex_trace(t: u64) -> String {
    format!("0x{t:016x}")
}

fn parse_hex_trace(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// One compact record per finalized request — everything a post-mortem
/// needs, nothing request-sized (no span tree, no payload data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Request id.
    pub id: u64,
    /// The request's deterministic [`crate::TraceId`] bits.
    pub trace: u64,
    /// Replica (shard) that finalized the request; `None` when it died
    /// before reaching one (shed, dead on arrival) or was served by a
    /// single unsharded server.
    pub replica: Option<u64>,
    /// Degradation tier served at (`Some` only for completions; 0 =
    /// full precision).
    pub tier: Option<u64>,
    /// Terminal outcome short name (`completed`, `shed`, `timed-out`,
    /// `breaker-open`, `failed`).
    pub outcome: String,
    /// Dispatch attempts made (0 if the request never reached one).
    pub attempts: u64,
    /// Whether a hedge duplicate was ever launched for this request.
    pub hedged: bool,
    /// Whether a hedge duplicate won the race outright.
    pub hedge_won: bool,
    /// Arrival tick on the virtual clock.
    pub arrival: u64,
    /// Finalization tick on the virtual clock.
    pub finished_at: u64,
    /// `finished_at − arrival`: sojourn time in ticks.
    pub latency: u64,
    /// `deadline − finished_at`: non-negative when the request beat its
    /// deadline, negative when it was finalized past it.
    pub deadline_slack: i64,
    /// Where every latency cycle went, bucketed by
    /// [`CycleCategory`] (concurrent buckets ride on top).
    pub attribution: CycleAttribution,
}

impl EventRecord {
    /// Retry dispatches (attempts beyond the first).
    pub fn retries(&self) -> u64 {
        self.attempts.saturating_sub(1)
    }

    /// Whether the request completed (any tier).
    pub fn completed(&self) -> bool {
        self.outcome == OUTCOME_COMPLETED
    }

    /// Flat form for bitwise-determinism fingerprints.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.id,
            self.trace,
            self.replica.map_or(u64::MAX, |r| r),
            self.tier.map_or(u64::MAX, |t| t),
            fnv1a(&self.outcome),
            self.attempts,
            self.hedged as u64,
            self.hedge_won as u64,
            self.arrival,
            self.finished_at,
            self.latency,
            self.deadline_slack as u64,
        ];
        fp.extend(self.attribution.fingerprint());
        fp
    }

    /// The record's field pairs, shared by the `sample` and `top` log
    /// lines.
    fn json_fields(&self) -> Vec<(&'static str, Json)> {
        let attr: Vec<(String, Json)> = self
            .attribution
            .iter()
            .map(|(c, cycles)| (c.name().to_string(), Json::UInt(cycles)))
            .collect();
        vec![
            ("id", Json::UInt(self.id)),
            ("trace", Json::Str(hex_trace(self.trace))),
            ("replica", self.replica.map_or(Json::Null, Json::UInt)),
            ("tier", self.tier.map_or(Json::Null, Json::UInt)),
            ("outcome", Json::Str(self.outcome.clone())),
            ("attempts", Json::UInt(self.attempts)),
            ("hedged", Json::Bool(self.hedged)),
            ("hedge_won", Json::Bool(self.hedge_won)),
            ("arrival", Json::UInt(self.arrival)),
            ("finished_at", Json::UInt(self.finished_at)),
            ("latency", Json::UInt(self.latency)),
            ("deadline_slack", Json::Num(self.deadline_slack as f64)),
            ("attr", Json::Obj(attr)),
        ]
    }

    /// Parses a record back out of a `sample`/`top` log line.
    /// Returns `None` on shape mismatch.
    pub fn from_json(j: &Json) -> Option<EventRecord> {
        let mut attribution = CycleAttribution::new();
        if let Some(Json::Obj(pairs)) = j.get("attr") {
            for (name, v) in pairs {
                let c = CycleCategory::ALL.iter().find(|c| c.name() == name)?;
                attribution.add(*c, v.as_u64()?);
            }
        }
        Some(EventRecord {
            id: j.get("id")?.as_u64()?,
            trace: parse_hex_trace(j.get("trace")?.as_str()?)?,
            replica: j.get("replica").and_then(Json::as_u64),
            tier: j.get("tier").and_then(Json::as_u64),
            outcome: j.get("outcome")?.as_str()?.to_string(),
            attempts: j.get("attempts")?.as_u64()?,
            hedged: j.get("hedged")?.as_bool()?,
            hedge_won: j.get("hedge_won")?.as_bool()?,
            arrival: j.get("arrival")?.as_u64()?,
            finished_at: j.get("finished_at")?.as_u64()?,
            latency: j.get("latency")?.as_u64()?,
            deadline_slack: j.get("deadline_slack")?.as_f64()? as i64,
            attribution,
        })
    }
}

/// Folded call stacks over the virtual cycle clock — the
/// inferno/speedscope flamegraph interchange format: one line per
/// distinct root-to-leaf frame path, `frame;frame;frame <cycles>`.
///
/// Frames are **category names** (plus the layer's own name for
/// `Layer` spans, which are low-cardinality labels like `conv0`), so
/// the map stays bounded by the distinct shapes a request can take,
/// not by the request count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    stacks: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// An empty profile.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Adds `cycles` to the stack named by `path` (frames already
    /// `;`-joined). Zero-cycle additions are dropped — they would add
    /// noise frames (e.g. breaker markers) with no area.
    pub fn add(&mut self, path: &str, cycles: u64) {
        if cycles > 0 {
            *self.stacks.entry(path.to_string()).or_insert(0) += cycles;
        }
    }

    /// Folds one request's span tree: every leaf contributes its cycles
    /// under its root-to-leaf frame path.
    pub fn add_tree(&mut self, tree: &SpanTree) {
        let spans = tree.spans();
        for (i, s) in spans.iter().enumerate() {
            let is_leaf = !spans.iter().any(|c| c.parent == Some(s.id));
            if !is_leaf || s.cycles() == 0 {
                continue;
            }
            // Walk parents up to the root, then reverse into a path.
            let mut frames: Vec<&str> = Vec::new();
            let mut cursor = Some(i);
            while let Some(ci) = cursor {
                let span = &spans[ci];
                frames.push(match span.category {
                    CycleCategory::Layer => span.name.as_str(),
                    c => c.name(),
                });
                cursor = span.parent.and_then(|pid| spans.iter().position(|p| p.id == pid));
            }
            frames.reverse();
            self.add(&frames.join(";"), s.cycles());
        }
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &FoldedStacks) {
        for (path, cycles) in &other.stacks {
            self.add(path, *cycles);
        }
    }

    /// The distinct stacks and their cycles, sorted by path.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.stacks.iter().map(|(p, &c)| (p.as_str(), c))
    }

    /// Total cycles across every stack.
    pub fn total(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Renders the inferno text form (sorted by path, one stack per
    /// line, trailing newline when non-empty).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (path, cycles) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text form written by [`FoldedStacks::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<FoldedStacks, String> {
        let mut folded = FoldedStacks::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (path, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no cycle count in {line:?}", i + 1))?;
            let cycles: u64 = count
                .parse()
                .map_err(|e| format!("line {}: bad cycle count {count:?}: {e}", i + 1))?;
            folded.add(path, cycles);
        }
        Ok(folded)
    }

    /// Each stack's share of the total cycles (empty profile → empty
    /// map).
    pub fn shares(&self) -> BTreeMap<String, f64> {
        let total = self.total();
        if total == 0 {
            return BTreeMap::new();
        }
        self.stacks.iter().map(|(p, &c)| (p.clone(), c as f64 / total as f64)).collect()
    }

    /// Flat form for bitwise-determinism fingerprints.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![self.stacks.len() as u64];
        for (path, cycles) in &self.stacks {
            fp.extend([fnv1a(path), *cycles]);
        }
        fp
    }
}

/// One attribution-share drift between two folded profiles, as found by
/// [`folded_share_regressions`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShareDrift {
    /// The frame path whose share moved.
    pub stack: String,
    /// Baseline share of total cycles (0 when the stack is new).
    pub base_share: f64,
    /// Current share of total cycles (0 when the stack vanished).
    pub cur_share: f64,
}

impl ShareDrift {
    /// Human-readable one-liner for the report table.
    pub fn describe(&self) -> String {
        format!(
            "{}: share {:.4}% -> {:.4}% ({:+.4} pp)",
            self.stack,
            self.base_share * 100.0,
            self.cur_share * 100.0,
            (self.cur_share - self.base_share) * 100.0
        )
    }
}

/// Differential profile: every stack whose share of total cycles moved
/// by more than `tolerance` (absolute share, e.g. `0.01` = one
/// percentage point) between `base` and `current` — including stacks
/// that appeared or vanished. The benches are deterministic, so the
/// default gate runs this at tolerance 0: any drift is a real change
/// in where the cycles go.
pub fn folded_share_regressions(
    base: &FoldedStacks,
    current: &FoldedStacks,
    tolerance: f64,
) -> Vec<ShareDrift> {
    let (bs, cs) = (base.shares(), current.shares());
    let mut stacks: Vec<&String> = bs.keys().chain(cs.keys()).collect();
    stacks.sort();
    stacks.dedup();
    // Strict inequality plus an epsilon so tolerance 0 still accepts
    // bit-identical floating shares.
    let slop = tolerance.max(0.0) + 1e-12;
    stacks
        .into_iter()
        .filter_map(|stack| {
            let base_share = bs.get(stack).copied().unwrap_or(0.0);
            let cur_share = cs.get(stack).copied().unwrap_or(0.0);
            ((cur_share - base_share).abs() > slop).then(|| ShareDrift {
                stack: stack.clone(),
                base_share,
                cur_share,
            })
        })
        .collect()
}

/// Sampling/windowing parameters for one [`ObsLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Tumbling-window width in virtual cycles (windows key on
    /// `finished_at / window`).
    pub window: u64,
    /// Reservoir size: how many full records each scenario stream keeps
    /// (Algorithm R, counter-keyed draws).
    pub reservoir: usize,
    /// How many slowest completed requests each scenario keeps exactly.
    pub top_k: usize,
    /// Seed folded into every sampling draw.
    pub seed: u64,
    /// Latency bucket upper bounds (one extra overflow bucket is
    /// implied). Defaults to the `serve.latency` log2 bounds so bucket
    /// exemplars line up with the registry histogram.
    pub bounds: Vec<u64>,
}

impl ObsConfig {
    /// A config with the standard sizes: 64-record reservoir, top-10,
    /// `serve.latency`-compatible log2(24) bounds.
    pub fn new(window: u64, seed: u64) -> ObsConfig {
        ObsConfig { window: window.max(1), reservoir: 64, top_k: 10, seed, bounds: log2_bounds(24) }
    }
}

/// One latency-bucket exemplar: a concrete request behind an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Exemplar {
    trace: u64,
    id: u64,
    latency: u64,
}

/// A bounded aggregate over a slice of the record stream (one window,
/// one group key, or a whole scenario): outcome counts, completed
/// latency buckets with per-bucket exemplars, and merged attribution.
#[derive(Debug, Clone, PartialEq)]
struct Agg {
    /// Draw key: distinguishes this aggregate's exemplar reservoirs
    /// from every other aggregate's.
    key: u64,
    count: u64,
    completed: u64,
    degraded: u64,
    shed: u64,
    timed_out: u64,
    errors: u64,
    missed_deadline: u64,
    hedged: u64,
    retries: u64,
    /// Completed-latency counts per bucket (+1 overflow).
    buckets: Vec<u64>,
    latency_sum: u64,
    max: u64,
    /// One reservoir-1 exemplar per bucket (completed records only).
    exemplars: Vec<Option<Exemplar>>,
    attr: CycleAttribution,
}

impl Agg {
    fn new(key: u64, bounds: usize) -> Agg {
        Agg {
            key,
            count: 0,
            completed: 0,
            degraded: 0,
            shed: 0,
            timed_out: 0,
            errors: 0,
            missed_deadline: 0,
            hedged: 0,
            retries: 0,
            buckets: vec![0; bounds + 1],
            latency_sum: 0,
            max: 0,
            exemplars: vec![None; bounds + 1],
            attr: CycleAttribution::new(),
        }
    }

    fn record(&mut self, rec: &EventRecord, bounds: &[u64], seed: u64) {
        self.count += 1;
        self.attr.merge(&rec.attribution);
        if rec.deadline_slack < 0 {
            self.missed_deadline += 1;
        }
        self.hedged += rec.hedged as u64;
        self.retries += rec.retries();
        match rec.outcome.as_str() {
            OUTCOME_COMPLETED => {
                self.completed += 1;
                if rec.tier.unwrap_or(0) > 0 {
                    self.degraded += 1;
                }
                let idx = bounds.partition_point(|&b| b < rec.latency);
                self.buckets[idx] += 1;
                self.latency_sum += rec.latency;
                self.max = self.max.max(rec.latency);
                // Reservoir of size 1 per bucket: the n-th completed
                // record in the bucket replaces the exemplar with
                // probability 1/n, decided by a counter-keyed SplitMix64
                // draw — deterministic, uniform over the bucket, O(1).
                let n = self.buckets[idx];
                let take =
                    n == 1 || split_mix(seed ^ self.key ^ (idx as u64) << 32 ^ n).is_multiple_of(n);
                if take {
                    self.exemplars[idx] =
                        Some(Exemplar { trace: rec.trace, id: rec.id, latency: rec.latency });
                }
            }
            "shed" => self.shed += 1,
            "timed-out" => self.timed_out += 1,
            _ => self.errors += 1,
        }
    }

    /// Nearest-rank quantile over the completed-latency buckets,
    /// clamped to the tracked maximum (per-aggregate, so window and
    /// group maxima are exact, unlike the registry histogram's
    /// overall-max clamp).
    fn quantile(&self, bounds: &[u64], q: f64) -> u64 {
        if self.completed == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.completed as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bounds.get(i).copied().unwrap_or(u64::MAX).min(self.max);
            }
        }
        self.max
    }

    /// The exemplar witnessing quantile `q`: the one from the bucket
    /// holding the rank, falling back to the nearest occupied bucket
    /// above, then below. `Some` whenever any request completed, so
    /// every reported p99 links to at least one concrete trace id.
    fn quantile_exemplar(&self, q: f64) -> Option<Exemplar> {
        if self.completed == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.completed as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut hit = self.buckets.len() - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                hit = i;
                break;
            }
        }
        (hit..self.buckets.len()).chain((0..hit).rev()).find_map(|i| self.exemplars[i])
    }

    fn goodput(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.completed as f64 / self.count as f64
        }
    }

    fn attr_json(&self) -> Json {
        Json::Obj(
            self.attr
                .iter()
                .map(|(c, cycles)| (c.name().to_string(), Json::UInt(cycles)))
                .collect(),
        )
    }

    /// The aggregate's common JSON fields (counts + latency stats +
    /// p50/p99 with the p99 exemplar).
    fn json_fields(&self, bounds: &[u64]) -> Vec<(&'static str, Json)> {
        let mut pairs = vec![
            ("count", Json::UInt(self.count)),
            ("completed", Json::UInt(self.completed)),
            ("degraded", Json::UInt(self.degraded)),
            ("shed", Json::UInt(self.shed)),
            ("timed_out", Json::UInt(self.timed_out)),
            ("errors", Json::UInt(self.errors)),
            ("missed_deadline", Json::UInt(self.missed_deadline)),
            ("hedged", Json::UInt(self.hedged)),
            ("retries", Json::UInt(self.retries)),
            ("goodput", Json::Num(self.goodput())),
            ("latency_sum", Json::UInt(self.latency_sum)),
            ("max", Json::UInt(self.max)),
            ("p50", Json::UInt(self.quantile(bounds, 0.50))),
            ("p99", Json::UInt(self.quantile(bounds, 0.99))),
        ];
        if let Some(e) = self.quantile_exemplar(0.99) {
            pairs.push(("p99_exemplar", Json::Str(hex_trace(e.trace))));
            pairs.push(("p99_exemplar_id", Json::UInt(e.id)));
        }
        pairs.push(("attr", self.attr_json()));
        pairs
    }
}

/// One scenario's bounded accumulator inside an [`ObsLog`].
#[derive(Debug, Clone, PartialEq)]
struct ScenarioObs {
    name: String,
    site: String,
    replicas: u64,
    seen: u64,
    total: Agg,
    windows: BTreeMap<u64, Agg>,
    by_outcome: BTreeMap<String, Agg>,
    by_tier: BTreeMap<u64, Agg>,
    by_replica: BTreeMap<u64, Agg>,
    reservoir: Vec<EventRecord>,
    /// Exact top-k slowest completed requests, keyed `(latency, id)`.
    top: BTreeMap<(u64, u64), EventRecord>,
    folded: FoldedStacks,
}

/// Summary numbers for one scenario stream, for gating asserts without
/// re-parsing the written log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSummary {
    /// Records ingested.
    pub requests: u64,
    /// Completed requests.
    pub completed: u64,
    /// `completed / requests` (0 when empty).
    pub goodput: f64,
    /// Bucketed nearest-rank p99 over completed latencies.
    pub p99: u64,
    /// Exact maximum completed latency.
    pub max_latency: u64,
    /// Closed tumbling windows the stream touched.
    pub windows: u64,
}

/// The streaming, bounded observability accumulator for one bench run.
/// See the module docs for the memory model and determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsLog {
    bench: String,
    cfg: ObsConfig,
    scenarios: Vec<ScenarioObs>,
}

impl ObsLog {
    /// A new empty log for `bench` under `cfg`.
    pub fn new(bench: impl Into<String>, cfg: ObsConfig) -> ObsLog {
        ObsLog { bench: bench.into(), cfg, scenarios: Vec::new() }
    }

    /// Opens a new scenario stream and returns its index. `site` names
    /// the fault site armed for the scenario (empty when clean) — the
    /// label `sc_obs` slices on.
    pub fn scenario(
        &mut self,
        name: impl Into<String>,
        site: impl Into<String>,
        replicas: u64,
    ) -> usize {
        let name = name.into();
        let key = split_mix(self.cfg.seed ^ fnv1a(&name));
        let bounds = self.cfg.bounds.len();
        self.scenarios.push(ScenarioObs {
            name,
            site: site.into(),
            replicas,
            seen: 0,
            total: Agg::new(key, bounds),
            windows: BTreeMap::new(),
            by_outcome: BTreeMap::new(),
            by_tier: BTreeMap::new(),
            by_replica: BTreeMap::new(),
            reservoir: Vec::new(),
            top: BTreeMap::new(),
            folded: FoldedStacks::new(),
        });
        self.scenarios.len() - 1
    }

    /// Streams one finalized-request record into scenario `idx`. O(log
    /// windows) time, O(1) added memory (amortized zero once the
    /// windows and groups exist).
    pub fn record(&mut self, idx: usize, rec: &EventRecord) {
        let (seed, bounds) = (self.cfg.seed, self.cfg.bounds.clone());
        let (window, reservoir, top_k) = (self.cfg.window, self.cfg.reservoir, self.cfg.top_k);
        let sc = &mut self.scenarios[idx];
        sc.seen += 1;
        sc.total.record(rec, &bounds, seed);
        let base = sc.total.key;
        let w = rec.finished_at / window;
        sc.windows
            .entry(w)
            .or_insert_with(|| Agg::new(split_mix(base ^ w), bounds.len()))
            .record(rec, &bounds, seed);
        sc.by_outcome
            .entry(rec.outcome.clone())
            .or_insert_with(|| Agg::new(split_mix(base ^ fnv1a(&rec.outcome)), bounds.len()))
            .record(rec, &bounds, seed);
        if let Some(t) = rec.tier {
            sc.by_tier
                .entry(t)
                .or_insert_with(|| Agg::new(split_mix(base ^ 0x7139 ^ t), bounds.len()))
                .record(rec, &bounds, seed);
        }
        if let Some(r) = rec.replica {
            sc.by_replica
                .entry(r)
                .or_insert_with(|| Agg::new(split_mix(base ^ 0x9e37 ^ r), bounds.len()))
                .record(rec, &bounds, seed);
        }
        // Algorithm R over the stream: record n (1-based) replaces a
        // uniformly-drawn slot with probability K/n. The draw is keyed
        // on the per-stream record index, so the sample is a pure
        // function of the stream.
        if sc.reservoir.len() < reservoir {
            sc.reservoir.push(rec.clone());
        } else if reservoir > 0 {
            let j = split_mix(seed ^ base ^ sc.seen) % sc.seen;
            if (j as usize) < reservoir {
                sc.reservoir[j as usize] = rec.clone();
            }
        }
        if rec.completed() && top_k > 0 {
            sc.top.insert((rec.latency, rec.id), rec.clone());
            while sc.top.len() > top_k {
                let first = *sc.top.keys().next().expect("non-empty");
                sc.top.remove(&first);
            }
        }
    }

    /// Streams a batch of records into scenario `idx`.
    pub fn ingest(&mut self, idx: usize, events: &[EventRecord]) {
        for rec in events {
            self.record(idx, rec);
        }
    }

    /// Merges a folded-stack profile into scenario `idx` (the serving
    /// layer folds each span tree as it finalizes, so trees need not
    /// be retained).
    pub fn fold(&mut self, idx: usize, folded: &FoldedStacks) {
        self.scenarios[idx].folded.merge(folded);
    }

    /// Folds one span tree directly into scenario `idx`.
    pub fn fold_tree(&mut self, idx: usize, tree: &SpanTree) {
        self.scenarios[idx].folded.add_tree(tree);
    }

    /// Summary numbers for scenario `idx`.
    pub fn summary(&self, idx: usize) -> ScenarioSummary {
        let sc = &self.scenarios[idx];
        ScenarioSummary {
            requests: sc.seen,
            completed: sc.total.completed,
            goodput: sc.total.goodput(),
            p99: sc.total.quantile(&self.cfg.bounds, 0.99),
            max_latency: sc.total.max,
            windows: sc.windows.len() as u64,
        }
    }

    /// The folded profile merged across every scenario — what the
    /// differential profiler diffs against `results/baseline/`.
    pub fn folded_total(&self) -> FoldedStacks {
        let mut all = FoldedStacks::new();
        for sc in &self.scenarios {
            all.merge(&sc.folded);
        }
        all
    }

    /// Upper bound on emitted log lines — a pure function of windows,
    /// groups, and sample sizes, independent of the request count.
    pub fn line_bound(&self) -> usize {
        let b = self.cfg.bounds.len() + 1;
        1 + self
            .scenarios
            .iter()
            .map(|sc| {
                2 + sc.windows.len()
                    + sc.by_outcome.len()
                    + sc.by_tier.len()
                    + sc.by_replica.len()
                    + sc.reservoir.len()
                    + sc.top.len()
                    + b
            })
            .sum::<usize>()
    }

    /// Renders the append-only JSONL event log: a header line, then per
    /// scenario its meta/summary line followed by `window`, `group`,
    /// `exemplar`, `top`, and `sample` lines — every line one compact
    /// JSON object, every sequence sorted, the whole text a pure
    /// function of the ingested stream.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let mut line = |j: Json| {
            out.push_str(&j.render());
            out.push('\n');
        };
        line(Json::obj(vec![
            ("kind", Json::Str("header".into())),
            ("schema_version", Json::UInt(OBS_SCHEMA_VERSION)),
            ("bench", Json::Str(self.bench.clone())),
            ("window", Json::UInt(self.cfg.window)),
            ("reservoir", Json::UInt(self.cfg.reservoir as u64)),
            ("top_k", Json::UInt(self.cfg.top_k as u64)),
            ("seed", Json::UInt(self.cfg.seed)),
            ("bounds", Json::Arr(self.cfg.bounds.iter().map(|&b| Json::UInt(b)).collect())),
            ("scenarios", Json::UInt(self.scenarios.len() as u64)),
        ]));
        for (i, sc) in self.scenarios.iter().enumerate() {
            let i = i as u64;
            let mut pairs = vec![
                ("kind", Json::Str("scenario".into())),
                ("scenario", Json::UInt(i)),
                ("name", Json::Str(sc.name.clone())),
                ("site", Json::Str(sc.site.clone())),
                ("replicas", Json::UInt(sc.replicas)),
                ("requests", Json::UInt(sc.seen)),
            ];
            pairs.extend(sc.total.json_fields(&self.cfg.bounds));
            line(Json::obj(pairs));
            for (w, agg) in &sc.windows {
                let mut pairs = vec![
                    ("kind", Json::Str("window".into())),
                    ("scenario", Json::UInt(i)),
                    ("index", Json::UInt(*w)),
                    ("start", Json::UInt(w * self.cfg.window)),
                    ("end", Json::UInt((w + 1) * self.cfg.window)),
                ];
                pairs.extend(agg.json_fields(&self.cfg.bounds));
                line(Json::obj(pairs));
            }
            let mut group = |by: &str, key: Json, agg: &Agg| {
                let mut pairs = vec![
                    ("kind", Json::Str("group".into())),
                    ("scenario", Json::UInt(i)),
                    ("by", Json::Str(by.into())),
                    ("key", key),
                ];
                pairs.extend(agg.json_fields(&self.cfg.bounds));
                line(Json::obj(pairs));
            };
            for (k, agg) in &sc.by_outcome {
                group("outcome", Json::Str(k.clone()), agg);
            }
            for (k, agg) in &sc.by_tier {
                group("tier", Json::UInt(*k), agg);
            }
            for (k, agg) in &sc.by_replica {
                group("replica", Json::UInt(*k), agg);
            }
            for (b, e) in sc.total.exemplars.iter().enumerate() {
                let Some(e) = e else { continue };
                line(Json::obj(vec![
                    ("kind", Json::Str("exemplar".into())),
                    ("scenario", Json::UInt(i)),
                    (
                        "le",
                        self.cfg.bounds.get(b).map_or(Json::Str("+inf".into()), |&v| Json::UInt(v)),
                    ),
                    ("bucket_count", Json::UInt(sc.total.buckets[b])),
                    ("trace", Json::Str(hex_trace(e.trace))),
                    ("id", Json::UInt(e.id)),
                    ("latency", Json::UInt(e.latency)),
                ]));
            }
            for (rank, (_, rec)) in sc.top.iter().rev().enumerate() {
                let mut pairs = vec![
                    ("kind", Json::Str("top".into())),
                    ("scenario", Json::UInt(i)),
                    ("rank", Json::UInt(rank as u64 + 1)),
                ];
                pairs.extend(rec.json_fields());
                line(Json::obj(pairs));
            }
            for (seq, rec) in sc.reservoir.iter().enumerate() {
                let mut pairs = vec![
                    ("kind", Json::Str("sample".into())),
                    ("scenario", Json::UInt(i)),
                    ("seq", Json::UInt(seq as u64)),
                ];
                pairs.extend(rec.json_fields());
                line(Json::obj(pairs));
            }
        }
        out
    }

    /// Writes `<dir>/<bench>.events.jsonl` and `<dir>/<bench>.folded`
    /// and returns both paths.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let events = dir.join(format!("{}.events.jsonl", self.bench));
        std::fs::write(&events, self.render_jsonl())?;
        let folded = dir.join(format!("{}.folded", self.bench));
        std::fs::write(&folded, self.folded_total().render())?;
        Ok((events, folded))
    }
}

// ---------------------------------------------------------------------
// Query engine
// ---------------------------------------------------------------------

/// Record-level and scenario-level filters for [`ObsView`] queries.
/// Scenario/site select streams; outcome/tier/replica select records
/// and group rows within them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsQuery {
    /// Keep only the scenario with this exact name.
    pub scenario: Option<String>,
    /// Keep only scenarios whose fault-site label matches exactly
    /// (empty string = clean scenarios).
    pub site: Option<String>,
    /// Keep only records/groups with this outcome.
    pub outcome: Option<String>,
    /// Keep only records/groups on this replica.
    pub replica: Option<u64>,
    /// Keep only records/groups at this degradation tier.
    pub tier: Option<u64>,
}

/// One parsed scenario stream inside an [`ObsView`].
#[derive(Debug, Clone)]
struct ScenarioLines {
    meta: Json,
    windows: Vec<Json>,
    groups: Vec<Json>,
    exemplars: Vec<Json>,
    tops: Vec<(Json, EventRecord)>,
    samples: Vec<EventRecord>,
}

impl ScenarioLines {
    fn name(&self) -> &str {
        self.meta.get("name").and_then(Json::as_str).unwrap_or("")
    }

    fn site(&self) -> &str {
        self.meta.get("site").and_then(Json::as_str).unwrap_or("")
    }

    fn selected(&self, q: &ObsQuery) -> bool {
        q.scenario.as_deref().is_none_or(|s| s == self.name())
            && q.site.as_deref().is_none_or(|s| s == self.site())
    }
}

fn record_selected(rec: &EventRecord, q: &ObsQuery) -> bool {
    q.outcome.as_deref().is_none_or(|o| o == rec.outcome)
        && q.replica.is_none_or(|r| rec.replica == Some(r))
        && q.tier.is_none_or(|t| rec.tier == Some(t))
}

fn uint_of(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn num_of(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn str_of<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("")
}

/// The query engine over a written event log: parses the JSONL text
/// back into its line kinds and renders deterministic text answers for
/// the `sc_obs` CLI (and for tests).
#[derive(Debug, Clone)]
pub struct ObsView {
    header: Json,
    scenarios: Vec<ScenarioLines>,
}

impl ObsView {
    /// Parses the text of a `<bench>.events.jsonl` file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or out-of-order
    /// line, or a header schema mismatch.
    pub fn parse(text: &str) -> Result<ObsView, String> {
        let mut header: Option<Json> = None;
        let mut scenarios: Vec<ScenarioLines> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let at = ln + 1;
            let j = Json::parse(raw).map_err(|e| format!("line {at}: {e}"))?;
            let kind = str_of(&j, "kind").to_string();
            match kind.as_str() {
                "header" => {
                    let v = uint_of(&j, "schema_version");
                    if v != OBS_SCHEMA_VERSION {
                        return Err(format!(
                            "line {at}: event-log schema_version {v} (supported: \
                             {OBS_SCHEMA_VERSION})"
                        ));
                    }
                    header = Some(j);
                }
                "scenario" => scenarios.push(ScenarioLines {
                    meta: j,
                    windows: Vec::new(),
                    groups: Vec::new(),
                    exemplars: Vec::new(),
                    tops: Vec::new(),
                    samples: Vec::new(),
                }),
                _ => {
                    let sc = scenarios
                        .last_mut()
                        .ok_or_else(|| format!("line {at}: {kind} line before any scenario"))?;
                    match kind.as_str() {
                        "window" => sc.windows.push(j),
                        "group" => sc.groups.push(j),
                        "exemplar" => sc.exemplars.push(j),
                        "top" => {
                            let rec = EventRecord::from_json(&j)
                                .ok_or_else(|| format!("line {at}: malformed top record"))?;
                            sc.tops.push((j, rec));
                        }
                        "sample" => sc.samples.push(
                            EventRecord::from_json(&j)
                                .ok_or_else(|| format!("line {at}: malformed sample record"))?,
                        ),
                        other => return Err(format!("line {at}: unknown line kind {other:?}")),
                    }
                }
            }
        }
        let header = header.ok_or_else(|| "event log has no header line".to_string())?;
        Ok(ObsView { header, scenarios })
    }

    /// Reads and parses an event-log file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a description.
    pub fn load(path: &Path) -> Result<ObsView, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ObsView::parse(&text)
    }

    /// The bench the log was written by.
    pub fn bench(&self) -> &str {
        str_of(&self.header, "bench")
    }

    fn selected(&self, q: &ObsQuery) -> Vec<&ScenarioLines> {
        self.scenarios.iter().filter(|sc| sc.selected(q)).collect()
    }

    /// `summary`: one row per selected scenario — requests, goodput,
    /// p50/p99 (with the p99 exemplar trace), windows, and the armed
    /// fault site.
    pub fn summary(&self, q: &ObsQuery) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:<18} {}\n",
            "scenario",
            "requests",
            "complete",
            "goodput",
            "p50",
            "p99",
            "windows",
            "p99-exemplar",
            "site"
        ));
        for sc in self.selected(q) {
            let m = &sc.meta;
            let exemplar = str_of(m, "p99_exemplar");
            out.push_str(&format!(
                "{:<24} {:>9} {:>9} {:>8.4} {:>9} {:>9} {:>8} {:<18} {}\n",
                sc.name(),
                uint_of(m, "requests"),
                uint_of(m, "completed"),
                num_of(m, "goodput"),
                uint_of(m, "p50"),
                uint_of(m, "p99"),
                sc.windows.len(),
                exemplar,
                sc.site(),
            ));
        }
        out
    }

    /// `top`: the `k` slowest completed requests per selected scenario
    /// (record-level filters apply), each with its exemplar-grade
    /// identity: trace id, replica, tier, attempts, hedging, deadline
    /// slack, and its two largest attribution buckets.
    pub fn top(&self, q: &ObsQuery, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>4} {:>9} {:<18} {:>7} {:>4} {:>8} {:>6} {:>12} {}\n",
            "scenario",
            "rank",
            "latency",
            "trace",
            "replica",
            "tier",
            "attempts",
            "hedged",
            "slack",
            "hottest"
        ));
        for sc in self.selected(q) {
            let mut rank = 0usize;
            for (line, rec) in &sc.tops {
                if !record_selected(rec, q) {
                    continue;
                }
                rank += 1;
                if rank > k {
                    break;
                }
                let mut buckets: Vec<(CycleCategory, u64)> = rec.attribution.iter().collect();
                buckets.sort_by_key(|&(c, cycles)| (std::cmp::Reverse(cycles), c.code()));
                let hottest = buckets
                    .iter()
                    .take(2)
                    .map(|(c, cycles)| format!("{}={cycles}", c.name()))
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    "{:<24} {:>4} {:>9} {:<18} {:>7} {:>4} {:>8} {:>6} {:>12} {}\n",
                    sc.name(),
                    uint_of(line, "rank"),
                    rec.latency,
                    hex_trace(rec.trace),
                    rec.replica.map_or("-".to_string(), |r| r.to_string()),
                    rec.tier.map_or("-".to_string(), |t| t.to_string()),
                    rec.attempts,
                    if rec.hedged { "yes" } else { "no" },
                    rec.deadline_slack,
                    hottest,
                ));
            }
        }
        out
    }

    /// `breakdown`: per selected scenario, one row per `by` group
    /// (`outcome`, `tier`, or `replica`) with counts, goodput, p99 (and
    /// its exemplar), and the group's cycle-attribution split.
    ///
    /// # Errors
    ///
    /// Rejects an unknown `by` dimension.
    pub fn breakdown(&self, q: &ObsQuery, by: &str) -> Result<String, String> {
        if !["outcome", "tier", "replica"].contains(&by) {
            return Err(format!("unknown breakdown dimension {by:?} (outcome|tier|replica)"));
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<12} {:>9} {:>8} {:>9} {:<18} {}\n",
            "scenario", by, "count", "goodput", "p99", "p99-exemplar", "attribution"
        ));
        for sc in self.selected(q) {
            for g in &sc.groups {
                if str_of(g, "by") != by {
                    continue;
                }
                let key = match g.get("key") {
                    Some(Json::Str(s)) => s.clone(),
                    Some(v) => v.render(),
                    None => String::new(),
                };
                if by == "outcome" && q.outcome.as_deref().is_some_and(|o| o != key) {
                    continue;
                }
                if by == "tier" && q.tier.is_some_and(|t| t.to_string() != key) {
                    continue;
                }
                if by == "replica" && q.replica.is_some_and(|r| r.to_string() != key) {
                    continue;
                }
                let attr = match g.get("attr") {
                    Some(Json::Obj(pairs)) => pairs
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|c| format!("{k}={c}")))
                        .collect::<Vec<_>>()
                        .join(","),
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "{:<24} {:<12} {:>9} {:>8.4} {:>9} {:<18} {}\n",
                    sc.name(),
                    key,
                    uint_of(g, "count"),
                    num_of(g, "goodput"),
                    uint_of(g, "p99"),
                    str_of(g, "p99_exemplar"),
                    attr,
                ));
            }
        }
        Ok(out)
    }

    /// `series`: the windowed goodput/p99 time series per selected
    /// scenario — one row per tumbling virtual-clock window, each p99
    /// with its exemplar trace.
    pub fn series(&self, q: &ObsQuery) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>9} {:>9} {:>8} {:>9} {:<18}\n",
            "scenario", "window", "start", "count", "complete", "goodput", "p99", "p99-exemplar"
        ));
        for sc in self.selected(q) {
            for w in &sc.windows {
                out.push_str(&format!(
                    "{:<24} {:>8} {:>12} {:>9} {:>9} {:>8.4} {:>9} {:<18}\n",
                    sc.name(),
                    uint_of(w, "index"),
                    uint_of(w, "start"),
                    uint_of(w, "count"),
                    uint_of(w, "completed"),
                    num_of(w, "goodput"),
                    uint_of(w, "p99"),
                    str_of(w, "p99_exemplar"),
                ));
            }
        }
        out
    }

    /// `exemplars`: the per-latency-bucket exemplar table per selected
    /// scenario — the concrete trace id behind each occupied
    /// `serve.latency`-compatible bucket.
    pub fn exemplars(&self, q: &ObsQuery) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:<18} {:>12} {:>9}\n",
            "scenario", "le", "bucket-count", "trace", "id", "latency"
        ));
        for sc in self.selected(q) {
            for e in &sc.exemplars {
                let le = match e.get("le") {
                    Some(Json::Str(s)) => s.clone(),
                    Some(v) => v.render(),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{:<24} {:>12} {:>12} {:<18} {:>12} {:>9}\n",
                    sc.name(),
                    le,
                    uint_of(e, "bucket_count"),
                    str_of(e, "trace"),
                    uint_of(e, "id"),
                    uint_of(e, "latency"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;

    fn rec(id: u64, outcome: &str, latency: u64, finished_at: u64) -> EventRecord {
        let mut attribution = CycleAttribution::new();
        attribution.add(CycleCategory::QueueWait, latency / 4);
        attribution.add(CycleCategory::MacStream, latency - latency / 4);
        EventRecord {
            id,
            trace: TraceId::derive(7, id).0,
            replica: Some(id % 3),
            tier: (outcome == OUTCOME_COMPLETED).then_some(id % 2),
            outcome: outcome.to_string(),
            attempts: 1 + id % 2,
            hedged: id.is_multiple_of(5),
            hedge_won: false,
            arrival: finished_at.saturating_sub(latency),
            finished_at,
            latency,
            deadline_slack: 100 - latency as i64,
            attribution,
        }
    }

    fn sample_log(n: u64) -> ObsLog {
        let mut log = ObsLog::new("unit", ObsConfig::new(1000, 0xC0FFEE));
        let idx = log.scenario("storm", "serve.backend", 3);
        for i in 0..n {
            let outcome = if i % 10 == 9 { "shed" } else { OUTCOME_COMPLETED };
            // Heavy-ish tail: latency grows with a power-of-two kick.
            let latency = 10 + (i % 7) * 30 + if i % 100 == 42 { 4000 } else { 0 };
            log.record(idx, &rec(i, outcome, latency, 50 + i * 37));
        }
        log
    }

    #[test]
    fn log_memory_is_bounded_by_windows_and_samples() {
        let small = sample_log(500);
        let large = sample_log(50_000);
        // 100x the requests: the line bound grows only with the window
        // count (finished_at span), never with the request count.
        let small_sc = &small.scenarios[0];
        let large_sc = &large.scenarios[0];
        assert_eq!(small_sc.reservoir.len(), small.cfg.reservoir);
        assert_eq!(large_sc.reservoir.len(), large.cfg.reservoir);
        assert_eq!(large_sc.top.len(), large.cfg.top_k);
        assert!(large.line_bound() < 4000, "bound {} is windows+samples", large.line_bound());
        let ratio = large.line_bound() as f64 / small.line_bound() as f64;
        let window_ratio = large_sc.windows.len() as f64 / small_sc.windows.len() as f64;
        assert!(ratio <= window_ratio + 1.0, "line growth tracks windows, not requests");
    }

    #[test]
    fn reservoir_and_exemplars_are_deterministic() {
        let a = sample_log(5000);
        let b = sample_log(5000);
        assert_eq!(a.render_jsonl(), b.render_jsonl(), "same stream, byte-identical log");
        // The reservoir holds records from across the stream, not just
        // its head (Algorithm R replaced some of the first K).
        let ids: Vec<u64> = a.scenarios[0].reservoir.iter().map(|r| r.id).collect();
        assert!(ids.iter().any(|&id| id >= 64), "reservoir must sample past the first K");
    }

    #[test]
    fn top_k_is_exact_and_sorted_slowest_first() {
        let log = sample_log(5000);
        let tops: Vec<&EventRecord> = log.scenarios[0].top.values().collect();
        // All retained tops are the 4000+ tail spikes.
        assert_eq!(tops.len(), 10);
        let slowest: Vec<u64> =
            log.scenarios[0].top.iter().rev().map(|((lat, _), _)| *lat).collect();
        assert!(slowest.windows(2).all(|w| w[0] >= w[1]), "descending latency");
        assert!(slowest.iter().all(|&l| l >= 4000), "top-k catches the heavy tail");
    }

    #[test]
    fn every_reported_p99_carries_an_exemplar() {
        let log = sample_log(5000);
        let sc = &log.scenarios[0];
        assert!(sc.total.quantile_exemplar(0.99).is_some());
        for (w, agg) in &sc.windows {
            if agg.completed > 0 {
                assert!(agg.quantile_exemplar(0.99).is_some(), "window {w} p99 has no exemplar");
            }
        }
        for (k, agg) in &sc.by_outcome {
            if agg.completed > 0 {
                assert!(agg.quantile_exemplar(0.99).is_some(), "group {k} p99 has no exemplar");
            }
        }
    }

    #[test]
    fn log_round_trips_through_the_query_engine() {
        let log = sample_log(2000);
        let text = log.render_jsonl();
        let view = ObsView::parse(&text).expect("parse back");
        let q = ObsQuery::default();
        let summary = view.summary(&q);
        assert!(summary.contains("storm"), "{summary}");
        assert!(summary.contains("serve.backend"), "{summary}");
        let top = view.top(&q, 5);
        assert!(top.contains("0x"), "top rows carry trace ids: {top}");
        let breakdown = view.breakdown(&q, "outcome").expect("valid dimension");
        assert!(breakdown.contains("completed") && breakdown.contains("shed"), "{breakdown}");
        assert!(view.breakdown(&q, "bogus").is_err());
        let series = view.series(&q);
        assert!(series.lines().count() > 2, "windowed series has rows: {series}");
        // Filters select deterministically.
        let filtered =
            view.top(&ObsQuery { outcome: Some("completed".into()), ..ObsQuery::default() }, 3);
        assert!(filtered.lines().count() <= 4);
        let none =
            view.summary(&ObsQuery { scenario: Some("absent".into()), ..ObsQuery::default() });
        assert_eq!(none.lines().count(), 1, "header only");
    }

    #[test]
    fn folded_stacks_fold_merge_render_and_parse() {
        let trace = TraceId::derive(1, 5);
        let mut tree = SpanTree::new(trace, "request 5", CycleCategory::Request, 100, 400);
        let root = tree.root().id;
        tree.add(root, "queue wait", CycleCategory::QueueWait, 100, 150);
        let svc = tree.add(root, "attempt 1", CycleCategory::Service, 150, 400);
        let layer = tree.add(svc, "conv0", CycleCategory::Layer, 150, 400);
        let tile = tree.add(layer, "tile 0", CycleCategory::Tile, 150, 400);
        tree.add(tile, "mac stream", CycleCategory::MacStream, 150, 380);
        tree.add(tile, "dmr verify", CycleCategory::DmrVerify, 380, 400);
        let mut folded = FoldedStacks::new();
        folded.add_tree(&tree);
        assert_eq!(folded.total(), 300, "leaves partition the root");
        let text = folded.render();
        assert!(text.contains("request;queue_wait 50\n"), "{text}");
        assert!(text.contains("request;service;conv0;tile;mac_stream 230\n"), "{text}");
        let parsed = FoldedStacks::parse(&text).expect("round trip");
        assert_eq!(parsed, folded);
        let mut merged = folded.clone();
        merged.merge(&folded);
        assert_eq!(merged.total(), 600);
        assert!(FoldedStacks::parse("nocount\n").is_err());
    }

    #[test]
    fn share_regressions_catch_injected_drift_and_pass_identity() {
        let base = FoldedStacks::parse("a;b 900\na;c 100\n").unwrap();
        assert!(folded_share_regressions(&base, &base, 0.0).is_empty(), "identity is clean");
        let drifted = FoldedStacks::parse("a;b 800\na;c 200\n").unwrap();
        let found = folded_share_regressions(&base, &drifted, 0.0);
        assert_eq!(found.len(), 2, "both shares moved");
        assert!(folded_share_regressions(&base, &drifted, 0.2).is_empty(), "inside tolerance");
        // A stack that vanishes (or appears) is a drift even at loose
        // tolerance when its share is material.
        let vanished = FoldedStacks::parse("a;b 1000\n").unwrap();
        let found = folded_share_regressions(&base, &vanished, 0.05);
        assert!(found.iter().any(|d| d.stack == "a;c" && d.cur_share == 0.0));
        assert!(!found[0].describe().is_empty());
    }

    #[test]
    fn event_record_json_round_trips() {
        let r = rec(42, OUTCOME_COMPLETED, 77, 1000);
        let j = Json::obj(r.json_fields().into_iter().collect());
        let back = EventRecord::from_json(&j).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.retries(), r.attempts - 1);
        // A shed record has no replica? (ours does; null fields parse
        // as None when absent)
        let shed = rec(9, "shed", 0, 500);
        let j = Json::obj(shed.json_fields().into_iter().collect());
        assert_eq!(EventRecord::from_json(&j), Some(shed));
    }
}
