//! Property tests for the fixed-point baseline.

use proptest::prelude::*;
use sc_core::Precision;
use sc_fixed::{dequantize, quantize, FixedMac, FixedMul};

fn signed_code(bits: u32, raw: i32) -> i32 {
    let h = 1i32 << (bits - 1);
    raw.rem_euclid(2 * h) - h
}

proptest! {
    /// Round-to-nearest product error is at most half an LSB.
    #[test]
    fn product_error_at_most_half_lsb(bits in 2u32..=16, w in any::<i32>(), x in any::<i32>()) {
        let n = Precision::new(bits).unwrap();
        let (w, x) = (signed_code(bits, w), signed_code(bits, x));
        let mul = FixedMul::new(n);
        let got = mul.multiply(w, x).unwrap() as f64;
        prop_assert!((got - mul.exact(w, x)).abs() <= 0.5 + 1e-12);
    }

    /// The product is odd-symmetric: (−w)·x = −(w·x) under
    /// round-half-away-from-zero.
    #[test]
    fn product_is_odd_symmetric(bits in 2u32..=16, w in any::<i32>(), x in any::<i32>()) {
        let n = Precision::new(bits).unwrap();
        let h = 1i32 << (bits - 1);
        // Exclude −2^(N-1), which has no positive counterpart.
        let w = signed_code(bits, w).max(-h + 1);
        let x = signed_code(bits, x);
        let mul = FixedMul::new(n);
        prop_assert_eq!(
            mul.multiply(-w, x).unwrap(),
            -mul.multiply(w, x).unwrap()
        );
    }

    /// Floor truncation never exceeds the rounded product and differs by
    /// at most one LSB.
    #[test]
    fn floor_is_below_round_by_at_most_one(bits in 2u32..=16, w in any::<i32>(), x in any::<i32>()) {
        let n = Precision::new(bits).unwrap();
        let (w, x) = (signed_code(bits, w), signed_code(bits, x));
        let mul = FixedMul::new(n);
        let floor = mul.multiply_floor(w, x);
        let round = mul.multiply(w, x).unwrap();
        prop_assert!(floor <= round);
        prop_assert!(round - floor <= 1);
    }

    /// Quantize/dequantize round-trips within half an LSB for in-range
    /// values.
    #[test]
    fn quantize_round_trip(bits in 2u32..=16, v in -0.999f32..=0.99) {
        let n = Precision::new(bits).unwrap();
        let lsb = 1.0 / (1u64 << (bits - 1)) as f32;
        // Values beyond the largest positive code (1 − lsb) clamp, so
        // restrict the property to the representable range.
        prop_assume!(v <= 1.0 - lsb);
        let q = quantize(v, n);
        let back = dequantize(q as i64, n);
        prop_assert!((back - v).abs() <= lsb / 2.0 + 1e-6, "v={v} back={back}");
    }

    /// A MAC dot product equals the clamped sum of individual products
    /// when no saturation occurs.
    #[test]
    fn mac_dot_equals_sum_without_saturation(bits in 4u32..=12, seed in any::<u64>()) {
        let n = Precision::new(bits).unwrap();
        let h = 1i32 << (bits - 1);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as i32).rem_euclid(2 * h) - h
        };
        let ws: Vec<i32> = (0..6).map(|_| next()).collect();
        let xs: Vec<i32> = (0..6).map(|_| next()).collect();
        let mut mac = FixedMac::new(n, 8); // wide headroom: no saturation
        let got = mac.dot(&ws, &xs).unwrap();
        let mul = FixedMul::new(n);
        let expect: i64 = ws.iter().zip(&xs).map(|(&w, &x)| mul.multiply(w, x).unwrap()).sum();
        prop_assert_eq!(got, expect);
        prop_assert!(!mac.has_saturated());
    }
}
