//! Property-style tests for the fixed-point baseline, driven by a
//! deterministic seeded sweep.

use sc_core::rng::SmallRng;
use sc_core::Precision;
use sc_fixed::{dequantize, quantize, FixedMac, FixedMul};

const CASES: usize = 128;

fn signed_code(rng: &mut SmallRng, bits: u32) -> i32 {
    let h = 1i32 << (bits - 1);
    rng.gen_range_i32(-h..h)
}

/// Round-to-nearest product error is at most half an LSB.
#[test]
fn product_error_at_most_half_lsb() {
    let mut rng = SmallRng::seed_from_u64(0xf1_0001);
    for _ in 0..CASES {
        let bits = rng.gen_range_u64(2..17) as u32;
        let n = Precision::new(bits).unwrap();
        let (w, x) = (signed_code(&mut rng, bits), signed_code(&mut rng, bits));
        let mul = FixedMul::new(n);
        let got = mul.multiply(w, x).unwrap() as f64;
        assert!((got - mul.exact(w, x)).abs() <= 0.5 + 1e-12, "bits={bits} w={w} x={x}");
    }
}

/// The product is odd-symmetric: (−w)·x = −(w·x) under
/// round-half-away-from-zero.
#[test]
fn product_is_odd_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0xf1_0002);
    for _ in 0..CASES {
        let bits = rng.gen_range_u64(2..17) as u32;
        let n = Precision::new(bits).unwrap();
        let h = 1i32 << (bits - 1);
        // Exclude −2^(N-1), which has no positive counterpart.
        let w = signed_code(&mut rng, bits).max(-h + 1);
        let x = signed_code(&mut rng, bits);
        let mul = FixedMul::new(n);
        assert_eq!(
            mul.multiply(-w, x).unwrap(),
            -mul.multiply(w, x).unwrap(),
            "bits={bits} w={w} x={x}"
        );
    }
}

/// Floor truncation never exceeds the rounded product and differs by at
/// most one LSB.
#[test]
fn floor_is_below_round_by_at_most_one() {
    let mut rng = SmallRng::seed_from_u64(0xf1_0003);
    for _ in 0..CASES {
        let bits = rng.gen_range_u64(2..17) as u32;
        let n = Precision::new(bits).unwrap();
        let (w, x) = (signed_code(&mut rng, bits), signed_code(&mut rng, bits));
        let mul = FixedMul::new(n);
        let floor = mul.multiply_floor(w, x);
        let round = mul.multiply(w, x).unwrap();
        assert!(floor <= round, "bits={bits} w={w} x={x}");
        assert!(round - floor <= 1, "bits={bits} w={w} x={x}");
    }
}

/// Quantize/dequantize round-trips within half an LSB for in-range
/// values.
#[test]
fn quantize_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xf1_0004);
    for _ in 0..CASES {
        let bits = rng.gen_range_u64(2..17) as u32;
        let n = Precision::new(bits).unwrap();
        let lsb = 1.0 / (1u64 << (bits - 1)) as f32;
        let v = rng.gen_range_f32(-0.999..0.99);
        // Values beyond the largest positive code (1 − lsb) clamp, so
        // restrict the property to the representable range.
        if v > 1.0 - lsb {
            continue;
        }
        let q = quantize(v, n);
        let back = dequantize(q as i64, n);
        assert!((back - v).abs() <= lsb / 2.0 + 1e-6, "bits={bits} v={v} back={back}");
    }
}

/// A MAC dot product equals the clamped sum of individual products when
/// no saturation occurs.
#[test]
fn mac_dot_equals_sum_without_saturation() {
    let mut rng = SmallRng::seed_from_u64(0xf1_0005);
    for _ in 0..CASES {
        let bits = rng.gen_range_u64(4..13) as u32;
        let n = Precision::new(bits).unwrap();
        let ws: Vec<i32> = (0..6).map(|_| signed_code(&mut rng, bits)).collect();
        let xs: Vec<i32> = (0..6).map(|_| signed_code(&mut rng, bits)).collect();
        let mut mac = FixedMac::new(n, 8); // wide headroom: no saturation
        let got = mac.dot(&ws, &xs).unwrap();
        let mul = FixedMul::new(n);
        let expect: i64 = ws.iter().zip(&xs).map(|(&w, &x)| mul.multiply(w, x).unwrap()).sum();
        assert_eq!(got, expect, "bits={bits} ws={ws:?} xs={xs:?}");
        assert!(!mac.has_saturated());
    }
}
