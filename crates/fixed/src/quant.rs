//! Quantization between `f32` real values and `N`-bit signed codes.

use sc_core::Precision;

/// Quantizes a real value in `[-1, 1)` to the nearest `N`-bit signed code
/// (round to nearest, saturating at the representable range).
///
/// ```
/// use sc_core::Precision;
/// use sc_fixed::quantize;
/// let n = Precision::new(8)?;
/// assert_eq!(quantize(0.5, n), 64);
/// assert_eq!(quantize(-2.0, n), -128); // saturates
/// assert_eq!(quantize(0.999, n), 127); // saturates at +max
/// # Ok::<(), sc_core::Error>(())
/// ```
#[inline]
pub fn quantize(value: f32, n: Precision) -> i32 {
    let (lo, hi) = n.signed_range();
    let scaled = (value as f64 * n.half_scale() as f64).round();
    scaled.clamp(lo as f64, hi as f64) as i32
}

/// Dequantizes a signed code (or accumulator value) back to a real value:
/// `code / 2^(N-1)`.
#[inline]
pub fn dequantize(code: i64, n: Precision) -> f32 {
    (code as f64 / n.half_scale() as f64) as f32
}

/// Quantizes a slice of real values into a new code vector.
pub fn quantize_slice(values: &[f32], n: Precision) -> Vec<i32> {
    values.iter().map(|&v| quantize(v, n)).collect()
}

/// Dequantizes a slice of codes into a new real-value vector.
pub fn dequantize_slice(codes: &[i64], n: Precision) -> Vec<f32> {
    codes.iter().map(|&c| dequantize(c, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32) -> Precision {
        Precision::new(bits).unwrap()
    }

    #[test]
    fn round_trip_error_is_half_lsb() {
        let n = p(8);
        let lsb = 1.0 / 128.0;
        for i in -100..100 {
            let v = i as f32 * 0.009;
            let q = quantize(v, n);
            let back = dequantize(q as i64, n);
            assert!((back - v).abs() <= lsb / 2.0 + 1e-6, "v={v} q={q} back={back}");
        }
    }

    #[test]
    fn saturation() {
        let n = p(5);
        assert_eq!(quantize(1.0, n), 15);
        assert_eq!(quantize(-1.0, n), -16);
        assert_eq!(quantize(10.0, n), 15);
    }

    #[test]
    fn slices() {
        let n = p(4);
        let q = quantize_slice(&[0.0, 0.5, -0.5], n);
        assert_eq!(q, vec![0, 4, -4]);
        let d = dequantize_slice(&[0, 4, -4], n);
        assert_eq!(d, vec![0.0, 0.5, -0.5]);
    }
}
