//! The truncating fixed-point multiplier.

use sc_core::{Error, Precision};

/// An `N`-bit two's-complement fixed-point multiplier with
/// truncate-before-accumulate semantics (paper Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMul {
    n: Precision,
}

impl FixedMul {
    /// Creates a multiplier at precision `n`.
    pub fn new(n: Precision) -> Self {
        FixedMul { n }
    }

    /// The operand precision.
    pub fn precision(&self) -> Precision {
        self.n
    }

    /// Multiplies signed codes and reduces the result to `N−1` fraction
    /// bits with **round-to-nearest** (half away from zero) — the same
    /// output units as the proposed SC-MAC's counter.
    ///
    /// The paper says the product is "truncated before accumulation";
    /// a plain floor truncation, however, biases every product by −½ LSB,
    /// which after the hundreds of accumulations of a conv layer shifts
    /// outputs by dozens of LSBs and demolishes the network (we verified
    /// this empirically). Since the paper's fixed-point baseline matches
    /// the float network from ~7 bits, its precision reduction must be a
    /// rounding one; we therefore interpret "truncate" as "reduce to
    /// operand precision, rounding to nearest" (one extra adder in the
    /// MAC — negligible area). See DESIGN.md §3.
    ///
    /// Use [`multiply_floor`](Self::multiply_floor) for the literal floor
    /// truncation (exposed for the ablation bench).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CodeOutOfRange`] if either code is outside
    /// `[-2^(N-1), 2^(N-1))`.
    pub fn multiply(&self, w: i32, x: i32) -> Result<i64, Error> {
        self.n.check_signed(w as i64)?;
        self.n.check_signed(x as i64)?;
        Ok(self.multiply_unchecked(w, x))
    }

    /// [`multiply`](Self::multiply) without the range checks — the hot
    /// path for convolution inner loops. Callers must have validated the
    /// codes (e.g. they come from [`crate::quantize`]).
    #[inline]
    pub fn multiply_unchecked(&self, w: i32, x: i32) -> i64 {
        let full = w as i64 * x as i64; // 2(N−1) fraction bits
        let shift = self.n.bits() - 1;
        let half = 1i64 << (shift - 1);
        // Round half away from zero, then drop the fraction.
        if full >= 0 {
            (full + half) >> shift
        } else {
            -((-full + half) >> shift)
        }
    }

    /// The literal floor truncation `(w·x) >> (N−1)` (arithmetic shift).
    /// Catastrophically biased at CNN accumulation depths — kept for the
    /// truncation-mode ablation.
    #[inline]
    pub fn multiply_floor(&self, w: i32, x: i32) -> i64 {
        let full = w as i64 * x as i64;
        full >> (self.n.bits() - 1)
    }

    /// The full-precision product (no truncation), for error analysis:
    /// real value `w·x / 2^(2(N-1))`, returned in `N−1`-fraction units as
    /// an exact rational via `f64`.
    pub fn exact(&self, w: i32, x: i32) -> f64 {
        (w as i64 * x as i64) as f64 / sc_core::Precision::half_scale(self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32) -> Precision {
        Precision::new(bits).unwrap()
    }

    #[test]
    fn basic_products() {
        let m = FixedMul::new(p(8));
        assert_eq!(m.multiply(64, 64).unwrap(), 32); // 0.5·0.5 = 0.25
        assert_eq!(m.multiply(-64, 64).unwrap(), -32);
        assert_eq!(m.multiply(127, 127).unwrap(), 126); // 125.99 rounds up
        assert_eq!(m.multiply(-128, -128).unwrap(), 128); // +1.0, needs acc bits
    }

    #[test]
    fn rounding_is_to_nearest_and_symmetric() {
        let m = FixedMul::new(p(4));
        // 3·3 = 9/8 = 1.125 → 1; symmetric for the negative product.
        assert_eq!(m.multiply(3, 3).unwrap(), 1);
        assert_eq!(m.multiply(-3, 3).unwrap(), -1);
        // 5·3 = 15/8 = 1.875 → 2.
        assert_eq!(m.multiply(5, 3).unwrap(), 2);
        assert_eq!(m.multiply(-5, 3).unwrap(), -2);
        // Halves round away from zero: 4·3 = 12/8 = 1.5 → 2.
        assert_eq!(m.multiply(4, 3).unwrap(), 2);
        assert_eq!(m.multiply(-4, 3).unwrap(), -2);
    }

    #[test]
    fn rounding_error_at_most_half_lsb_and_unbiased() {
        let m = FixedMul::new(p(6));
        let mut bias = 0.0f64;
        for w in -32..32i32 {
            for x in -32..32i32 {
                let t = m.multiply(w, x).unwrap() as f64;
                let e = m.exact(w, x);
                assert!((e - t).abs() <= 0.5, "w={w} x={x}");
                bias += e - t;
            }
        }
        // Round-half-away is symmetric, so the grand bias is ~0 (compare
        // with 0.5·4096 ≈ 2048 for floor truncation).
        assert!(bias.abs() < 64.0, "bias {bias}");
    }

    #[test]
    fn floor_truncation_is_biased_downward() {
        let m = FixedMul::new(p(6));
        // The ablation variant: floor truncation loses up to 1 LSB and
        // averages −0.5 LSB per product. (−9/32 = −0.28 floors to −1.)
        assert_eq!(m.multiply_floor(-3, 3), -1);
        let mut bias = 0.0f64;
        for w in -32..32i32 {
            for x in -32..32i32 {
                bias += m.exact(w, x) - m.multiply_floor(w, x) as f64;
            }
        }
        assert!(bias > 1000.0, "floor bias {bias}");
    }

    #[test]
    fn range_checked() {
        let m = FixedMul::new(p(4));
        assert!(m.multiply(8, 0).is_err());
        assert!(m.multiply(0, -9).is_err());
    }
}
