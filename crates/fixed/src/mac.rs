//! The fixed-point MAC: truncating multiplier + saturating accumulator.

use crate::FixedMul;
use sc_core::mac::SaturatingAccumulator;
use sc_core::{Error, Precision};

/// A fixed-point multiply-accumulate unit mirroring the paper's binary
/// baseline MAC: each product is truncated to `N−1` fraction bits, then
/// added into a saturating `N+A`-bit accumulator.
///
/// ```
/// use sc_core::Precision;
/// use sc_fixed::FixedMac;
///
/// # fn main() -> Result<(), sc_core::Error> {
/// let n = Precision::new(8)?;
/// let mut mac = FixedMac::new(n, 2);
/// mac.mac(64, 64)?;  // +0.25 → +32
/// mac.mac(-64, 32)?; // −0.125 → −16
/// assert_eq!(mac.value(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMac {
    mul: FixedMul,
    acc: SaturatingAccumulator,
}

impl FixedMac {
    /// Creates a MAC at precision `n` with `extra_bits` accumulation bits
    /// (the paper's `A`, default 2 in the experiments).
    pub fn new(n: Precision, extra_bits: u32) -> Self {
        FixedMac { mul: FixedMul::new(n), acc: SaturatingAccumulator::new(n, extra_bits) }
    }

    /// The operand precision.
    pub fn precision(&self) -> Precision {
        self.mul.precision()
    }

    /// Multiplies `w·x` (truncating) and accumulates (saturating).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CodeOutOfRange`] if either code is out of range.
    pub fn mac(&mut self, w: i32, x: i32) -> Result<(), Error> {
        let prod = self.mul.multiply(w, x)?;
        self.acc.add(prod);
        Ok(())
    }

    /// The current accumulator value (units of `2^-(N-1)`).
    pub fn value(&self) -> i64 {
        self.acc.value()
    }

    /// Whether the accumulator has saturated since the last reset.
    pub fn has_saturated(&self) -> bool {
        self.acc.has_saturated()
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        self.acc.reset();
    }

    /// Computes a full dot product `Σ w_i·x_i` from scratch and returns the
    /// accumulator value; the MAC is left holding the result.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the slices differ in length;
    /// code-range errors propagate.
    pub fn dot(&mut self, ws: &[i32], xs: &[i32]) -> Result<i64, Error> {
        if ws.len() != xs.len() {
            return Err(Error::LengthMismatch { expected: ws.len(), actual: xs.len() });
        }
        self.reset();
        for (&w, &x) in ws.iter().zip(xs) {
            self.mac(w, x)?;
        }
        Ok(self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32) -> Precision {
        Precision::new(bits).unwrap()
    }

    #[test]
    fn dot_product_matches_manual() {
        let mut mac = FixedMac::new(p(8), 4);
        let ws = [64i32, -64, 127];
        let xs = [64i32, 32, -128];
        let got = mac.dot(&ws, &xs).unwrap();
        // 32 + (-16) + (127·-128)>>7 = 32 - 16 - 127 = -111
        assert_eq!(got, -111);
    }

    #[test]
    fn saturation_clamps() {
        let mut mac = FixedMac::new(p(4), 0); // 4-bit acc: [-8, 7]
        for _ in 0..10 {
            mac.mac(7, 7).unwrap(); // each +(49>>3) = +6
        }
        assert_eq!(mac.value(), 7);
        assert!(mac.has_saturated());
    }

    #[test]
    fn reset_clears() {
        let mut mac = FixedMac::new(p(6), 2);
        mac.mac(31, 31).unwrap();
        mac.reset();
        assert_eq!(mac.value(), 0);
        assert!(!mac.has_saturated());
    }

    #[test]
    fn length_mismatch() {
        let mut mac = FixedMac::new(p(6), 2);
        assert!(mac.dot(&[1, 2], &[1]).is_err());
    }
}
