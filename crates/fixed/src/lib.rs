//! # sc-fixed — the fixed-point binary baseline
//!
//! The paper compares its SC-CNN against *bitwidth-optimized fixed-point
//! binary* implementations. This crate provides that baseline with the
//! exact arithmetic conventions of the paper's Sec. 4.2:
//!
//! * operands are `N`-bit two's complement with `N−1` fractional bits
//!   (value = `code / 2^(N-1) ∈ [-1, 1)`), the same *multiplier precision*
//!   `N` as the SC designs;
//! * "the multiplication result is **truncated** before accumulation" —
//!   the `2(N−1)`-fraction full product is arithmetically shifted right to
//!   `N−1` fraction bits;
//! * accumulation uses the same **saturating** `N+A`-bit accumulator as
//!   the SC designs ([`sc_core::mac::SaturatingAccumulator`]).
//!
//! With these conventions a fixed-point product lands in exactly the same
//! units (`2^-(N-1)`) as the proposed SC-MAC's up/down counter value, so
//! accuracy comparisons are apples-to-apples.
//!
//! ```
//! use sc_core::Precision;
//! use sc_fixed::FixedMul;
//!
//! # fn main() -> Result<(), sc_core::Error> {
//! let n = Precision::new(8)?;
//! let mul = FixedMul::new(n);
//! // (-0.5) × 0.25 = -0.125 → code -16 at 2^7 scale.
//! assert_eq!(mul.multiply(-64, 32)?, -16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mac;
mod mul;
mod quant;

pub use mac::FixedMac;
pub use mul::FixedMul;
pub use quant::{dequantize, dequantize_slice, quantize, quantize_slice};
