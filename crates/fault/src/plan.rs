//! Fault plans: what kind of fault, at which sites, how often, and when.

use sc_core::Error;

/// The physical failure mode a site models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient single-event upset: one bit flips for one cycle.
    Transient,
    /// Persistent stuck-at-0: the node reads 0 while the fault is live.
    StuckAt0,
    /// Persistent stuck-at-1: the node reads 1 while the fault is live.
    StuckAt1,
    /// Timing starvation: the node misses its update this cycle (the
    /// clock still advances, the work is dropped).
    Starve,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "flip" => Some(FaultKind::Transient),
            "stuck0" => Some(FaultKind::StuckAt0),
            "stuck1" => Some(FaultKind::StuckAt1),
            "starve" => Some(FaultKind::Starve),
            _ => None,
        }
    }

    /// The spec-grammar token for this kind.
    pub fn token(&self) -> &'static str {
        match self {
            FaultKind::Transient => "flip",
            FaultKind::StuckAt0 => "stuck0",
            FaultKind::StuckAt1 => "stuck1",
            FaultKind::Starve => "starve",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// One armed entry of a plan: a site pattern plus fault parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Site name to match: exact, or a prefix ending in `*`.
    pub pattern: String,
    /// Failure mode injected at matching sites.
    pub kind: FaultKind,
    /// Per-draw fault probability in `[0, 1]`.
    pub rate: f64,
    /// Optional half-open index window `[start, end)` outside which the
    /// site never fires (models a burst / beam window).
    pub window: Option<(u64, u64)>,
}

impl SiteSpec {
    /// Whether this entry's pattern matches `site` (exact match, or
    /// prefix match when the pattern ends in `*`).
    pub fn matches(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.pattern == site,
        }
    }
}

/// A complete, deterministic fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every draw (default 0).
    pub seed: u64,
    /// Armed entries in spec order; the first match wins.
    pub entries: Vec<SiteSpec>,
}

impl FaultPlan {
    /// Parses an `SC_FAULTS` spec string (see the crate docs for the
    /// grammar). Empty / whitespace-only specs yield an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, Error> {
        let mut plan = FaultPlan { seed: 0, entries: Vec::new() };
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed.trim().parse::<u64>().map_err(|_| Error::FaultSpecParse {
                    entry: entry.to_string(),
                    reason: "seed must be an unsigned 64-bit integer".to_string(),
                })?;
                continue;
            }
            plan.entries.push(Self::parse_site_entry(entry)?);
        }
        Ok(plan)
    }

    fn parse_site_entry(entry: &str) -> Result<SiteSpec, Error> {
        let err = |reason: &str| Error::FaultSpecParse {
            entry: entry.to_string(),
            reason: reason.to_string(),
        };
        let (site, rest) = entry
            .split_once(':')
            .ok_or_else(|| err("expected `<site>:<kind>@<rate>[@start..end]` or `seed=<u64>`"))?;
        let site = site.trim();
        if site.is_empty() || site[..site.len() - 1].contains('*') {
            return Err(err("site must be a non-empty name, `*` only allowed as a suffix"));
        }
        let mut parts = rest.split('@');
        let kind = FaultKind::parse(parts.next().unwrap_or("").trim())
            .ok_or_else(|| err("kind must be one of flip|stuck0|stuck1|starve"))?;
        let rate: f64 = parts
            .next()
            .ok_or_else(|| err("missing `@<rate>`"))?
            .trim()
            .parse()
            .map_err(|_| err("rate must be a float"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(err("rate must be in [0, 1]"));
        }
        let window = match parts.next() {
            None => None,
            Some(w) => {
                let (start, end) =
                    w.trim().split_once("..").ok_or_else(|| err("window must be `start..end`"))?;
                let start: u64 =
                    start.trim().parse().map_err(|_| err("window start must be a u64"))?;
                let end: u64 = end.trim().parse().map_err(|_| err("window end must be a u64"))?;
                if end <= start {
                    return Err(err("window end must be greater than start"));
                }
                Some((start, end))
            }
        };
        if parts.next().is_some() {
            return Err(err("too many `@` sections"));
        }
        Ok(SiteSpec { pattern: site.to_string(), kind, rate, window })
    }

    /// The first entry whose pattern matches `site`, if any.
    pub fn lookup(&self, site: &str) -> Option<&SiteSpec> {
        self.entries.iter().find(|e| e.matches(site))
    }

    /// Whether any entry could ever fire (nonzero rate).
    pub fn is_armed(&self) -> bool {
        self.entries.iter().any(|e| e.rate > 0.0)
    }

    /// Renders the plan back into spec-string form (parseable by
    /// [`FaultPlan::parse`]).
    pub fn to_spec(&self) -> String {
        let mut parts: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let mut s = format!("{}:{}@{}", e.pattern, e.kind, e.rate);
                if let Some((a, b)) = e.window {
                    s.push_str(&format!("@{a}..{b}"));
                }
                s
            })
            .collect();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        parts.join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse("rtlsim.mac.stream:flip@1e-3; mem.*:stuck1@0.5@10..20; seed=9")
            .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].kind, FaultKind::Transient);
        assert_eq!(plan.entries[0].rate, 1e-3);
        assert_eq!(plan.entries[0].window, None);
        assert_eq!(plan.entries[1].kind, FaultKind::StuckAt1);
        assert_eq!(plan.entries[1].window, Some((10, 20)));
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("  ;; ").unwrap();
        assert!(plan.entries.is_empty());
        assert!(!plan.is_armed());
    }

    #[test]
    fn wildcard_and_exact_matching() {
        let plan = FaultPlan::parse("mem.*:flip@0.1;rtlsim.fsm.state:flip@0.2").unwrap();
        assert!(plan.lookup("mem.sram").is_some());
        assert!(plan.lookup("mem.sram.bank0").is_some());
        assert_eq!(plan.lookup("rtlsim.fsm.state").unwrap().rate, 0.2);
        assert!(plan.lookup("rtlsim.mac.stream").is_none());
        // First match wins.
        let plan = FaultPlan::parse("a.*:flip@0.1;a.b:stuck0@0.9").unwrap();
        assert_eq!(plan.lookup("a.b").unwrap().rate, 0.1);
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "noseparator",
            "site:badkind@0.1",
            "site:flip",
            "site:flip@nan_rate_x",
            "site:flip@1.5",
            "site:flip@-0.1",
            "site:flip@0.1@5..5",
            "site:flip@0.1@9..3",
            "site:flip@0.1@1..2@3",
            "si*te:flip@0.1",
            ":flip@0.1",
            "seed=notanumber",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            match e {
                Error::FaultSpecParse { entry, .. } => assert!(bad.contains(&entry)),
                other => panic!("expected FaultSpecParse, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_round_trip() {
        let spec = "rtlsim.mac.stream:flip@0.001;mem.*:stuck1@0.5@10..20;seed=9";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn zero_rate_entries_do_not_arm() {
        let plan = FaultPlan::parse("a:flip@0;b:flip@0.0").unwrap();
        assert!(!plan.is_armed());
    }
}
