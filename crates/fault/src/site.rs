//! Named injection sites and the process-global armed plan.
//!
//! A component resolves its site once at construction —
//! `sc_fault::site("rtlsim.mac.stream")` — and holds the returned
//! [`FaultSite`] (or `None`, the fault-free fast path: a disarmed run
//! never pays more than one relaxed atomic load per construction).
//! Draws are pure functions of `(plan seed, site name, instance key,
//! index)`, so results never depend on which thread executes the work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

use crate::plan::{FaultKind, FaultPlan};
use crate::split_mix;
use sc_telemetry::metrics::Counter;

struct Global {
    plan: RwLock<Option<Arc<FaultPlan>>>,
    /// Fast gate: true iff a plan with at least one nonzero-rate entry
    /// is installed.
    armed: AtomicBool,
    /// Whether `SC_FAULTS` has been consumed (or superseded by an
    /// explicit [`install`]).
    env_read: AtomicBool,
    /// Serializes scoped installs so parallel tests can't race plans.
    scope: Mutex<()>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        plan: RwLock::new(None),
        armed: AtomicBool::new(false),
        env_read: AtomicBool::new(false),
        scope: Mutex::new(()),
    })
}

fn set_plan(plan: Option<Arc<FaultPlan>>) {
    let g = global();
    let armed = plan.as_ref().is_some_and(|p| p.is_armed());
    *g.plan.write().unwrap_or_else(|p| p.into_inner()) = plan;
    g.armed.store(armed, Ordering::Release);
}

/// Installs `plan` as the process-global fault plan, replacing any
/// previous plan (including one loaded from `SC_FAULTS`).
pub fn install(plan: FaultPlan) {
    let g = global();
    g.env_read.store(true, Ordering::Release);
    set_plan(Some(Arc::new(plan)));
}

/// Removes the active plan; the process behaves as if `SC_FAULTS` were
/// unset from here on.
pub fn clear() {
    let g = global();
    g.env_read.store(true, Ordering::Release);
    set_plan(None);
}

/// Consumes `SC_FAULTS` (if set and not already consumed) and installs
/// the parsed plan — the fallible form of the lazy env load every site
/// resolution performs.
///
/// Call this once at process startup to surface a malformed operator
/// spec as a typed error instead of the panic the lazy path raises.
///
/// # Errors
///
/// Returns [`sc_core::Error::FaultSpecParse`] naming the grammar when
/// the spec does not parse; the variable is still marked consumed, so
/// later site resolutions run fault-free rather than re-panicking.
pub fn try_load_env() -> Result<(), sc_core::Error> {
    let g = global();
    if g.env_read.swap(true, Ordering::AcqRel) {
        return Ok(());
    }
    let Ok(spec) = std::env::var("SC_FAULTS") else { return Ok(()) };
    match FaultPlan::parse(&spec) {
        Ok(plan) => {
            set_plan(Some(Arc::new(plan)));
            Ok(())
        }
        Err(sc_core::Error::FaultSpecParse { entry, reason }) => {
            Err(sc_core::Error::FaultSpecParse {
                entry,
                reason: format!(
                    "{reason}; expected `<site>:<kind>@<rate>[@<start>..<end>]` entries separated \
                 by `;`, with kinds flip|stuck0|stuck1|starve and an optional trailing `seed=<n>`"
                ),
            })
        }
        Err(e) => Err(e),
    }
}

fn ensure_env_loaded() {
    // A malformed plan silently ignored would run the process
    // fault-free while the operator believes faults are armed: the lazy
    // path hard-errors, naming the grammar. Startup code that prefers a
    // typed error calls `try_load_env` first.
    if let Err(e) = try_load_env() {
        panic!("invalid SC_FAULTS spec: {e}");
    }
}

/// The active plan rendered back to spec form (for manifests), if one
/// is installed and armed.
pub fn installed_spec() -> Option<String> {
    ensure_env_loaded();
    let g = global();
    let guard = g.plan.read().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().filter(|p| p.is_armed()).map(|p| p.to_spec())
}

/// Resolves a named injection site against the active plan.
///
/// Returns `None` when no plan is installed, no entry matches `name`,
/// or the matching entry's rate is zero — so a zero-rate spec is
/// bitwise indistinguishable from no spec at all.
pub fn site(name: &str) -> Option<FaultSite> {
    let g = global();
    if !g.armed.load(Ordering::Acquire) {
        ensure_env_loaded();
        if !g.armed.load(Ordering::Acquire) {
            return None;
        }
    }
    let guard = g.plan.read().unwrap_or_else(|p| p.into_inner());
    let plan = guard.as_ref()?;
    let spec = plan.lookup(name)?;
    if spec.rate <= 0.0 {
        return None;
    }
    Some(FaultSite {
        name: Arc::from(name),
        kind: spec.kind,
        rate: spec.rate,
        window: spec.window,
        key: split_mix(plan.seed ^ fnv1a(name)),
        injected: sc_telemetry::metrics::counter("fault.injected"),
        injected_site: sc_telemetry::metrics::counter(&format!("fault.injected.{name}")),
    })
}

/// Installs `plan` for the lifetime of the returned guard, restoring
/// the previous plan on drop. Scoped installs are serialized through a
/// global lock, so parallel `#[test]`s using this cannot observe each
/// other's plans.
pub fn scoped(plan: FaultPlan) -> ScopedPlan {
    ensure_env_loaded();
    let g = global();
    let lock = g.scope.lock().unwrap_or_else(|p| p.into_inner());
    let previous = g.plan.read().unwrap_or_else(|p| p.into_inner()).clone();
    set_plan(Some(Arc::new(plan)));
    ScopedPlan { previous, _lock: lock }
}

/// Guard returned by [`scoped`]; restores the previous plan on drop.
pub struct ScopedPlan {
    previous: Option<Arc<FaultPlan>>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        set_plan(self.previous.take());
    }
}

impl std::fmt::Debug for ScopedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedPlan").finish_non_exhaustive()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A resolved, armed injection site.
///
/// Cheap to clone (two `Arc`s and scalars). All draw methods are pure
/// in their arguments; telemetry recording is the only side effect.
#[derive(Debug, Clone)]
pub struct FaultSite {
    name: Arc<str>,
    kind: FaultKind,
    rate: f64,
    window: Option<(u64, u64)>,
    key: u64,
    injected: Counter,
    injected_site: Counter,
}

impl FaultSite {
    /// The site name this handle was resolved for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The failure mode armed at this site.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The per-draw fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws a per-event fault: fires with probability `rate` as a pure
    /// function of `(instance, index)`, provided `index` is inside the
    /// configured window. On fire, returns fresh entropy for the caller
    /// to steer the damage (which bit, which direction) and records the
    /// injection.
    #[inline]
    pub fn transient(&self, instance: u64, index: u64) -> Option<u64> {
        if let Some((start, end)) = self.window {
            if index < start || index >= end {
                return None;
            }
        }
        let r = split_mix(
            self.key
                ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        self.record(instance, index);
        Some(split_mix(r))
    }

    /// Draws a *phased* fault: the draw is a pure function of
    /// `(instance, index)` — like [`FaultSite::transient`] — but the
    /// spec's `@start..end` window gates on `at` (a virtual-clock tick)
    /// instead of on the draw index. This is the replica-chaos shape:
    /// "replica `instance` is down during `[start, end)`" draws once per
    /// `(replica, epoch)` yet switches on and off with simulated time,
    /// so a crashed replica recovers cleanly when the window closes.
    #[inline]
    pub fn phased(&self, instance: u64, index: u64, at: u64) -> Option<u64> {
        if let Some((start, end)) = self.window {
            if at < start || at >= end {
                return None;
            }
        }
        let r = split_mix(
            self.key
                ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        self.record(instance, index);
        Some(split_mix(r))
    }

    /// Draws a lifetime fault for one physical instance (e.g. "is lane
    /// 3 stuck?"): fires with probability `rate` keyed by `instance`
    /// alone. On fire, returns entropy and records the injection.
    pub fn persistent(&self, instance: u64) -> Option<u64> {
        let r = split_mix(self.key ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        self.record(instance, 0);
        Some(split_mix(r))
    }

    /// The value a stuck node reads, if this site is armed with a
    /// stuck-at kind.
    pub fn stuck_value(&self) -> Option<bool> {
        match self.kind {
            FaultKind::StuckAt0 => Some(false),
            FaultKind::StuckAt1 => Some(true),
            FaultKind::Transient | FaultKind::Starve => None,
        }
    }

    fn record(&self, instance: u64, index: u64) {
        self.injected.incr(1);
        self.injected_site.incr(1);
        if sc_telemetry::span::tracing_active() {
            let site = &*self.name;
            sc_telemetry::event!("fault.inject", site, instance, index);
        }
    }
}

fn ladder_counter(cell: &'static OnceLock<Counter>, name: &str) -> &'static Counter {
    cell.get_or_init(|| sc_telemetry::metrics::counter(name))
}

/// Records `n` faults caught by a checker (parity, range, recompute).
pub fn record_detected(n: u64) {
    static C: OnceLock<Counter> = OnceLock::new();
    ladder_counter(&C, "fault.detected").incr(n);
}

/// Records `n` faults repaired exactly (scrub, successful recompute).
pub fn record_corrected(n: u64) {
    static C: OnceLock<Counter> = OnceLock::new();
    ladder_counter(&C, "fault.corrected").incr(n);
}

/// Records `n` faults that escaped detection (e.g. even-bit parity
/// aliasing) — known only because the injector tells us.
pub fn record_masked(n: u64) {
    static C: OnceLock<Counter> = OnceLock::new();
    ladder_counter(&C, "fault.masked").incr(n);
}

/// Records `n` graceful degradations (retry budget exhausted, result
/// recomputed at reduced precision instead of aborting).
pub fn record_degraded(n: u64) {
    static C: OnceLock<Counter> = OnceLock::new();
    ladder_counter(&C, "fault.degraded").incr(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_process_resolves_no_sites() {
        let _guard = scoped(FaultPlan::parse("").unwrap());
        assert!(site("rtlsim.mac.stream").is_none());
    }

    #[test]
    fn zero_rate_site_is_disarmed() {
        let _guard = scoped(FaultPlan::parse("a.b:flip@0;c:flip@0.5").unwrap());
        assert!(site("a.b").is_none());
        assert!(site("c").is_some());
    }

    #[test]
    fn scoped_install_restores_previous_plan() {
        {
            let _outer = scoped(FaultPlan::parse("x:flip@1").unwrap());
            assert!(site("x").is_some());
        }
        // After the guard drops the plan from before `scoped` is back
        // (either None or whatever a concurrently-running test holds —
        // but never the "x" plan).
    }

    #[test]
    fn draws_are_deterministic_and_rate_accurate() {
        let _guard = scoped(FaultPlan::parse("s:flip@0.1;seed=42").unwrap());
        let s = site("s").unwrap();
        let hits: Vec<u64> = (0..200_000).filter(|&i| s.transient(7, i).is_some()).collect();
        let rate = hits.len() as f64 / 200_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
        // Same (instance, index) always draws the same outcome.
        for &i in hits.iter().take(50) {
            assert!(s.transient(7, i).is_some());
            assert_eq!(s.transient(7, i), s.transient(7, i));
        }
        // Different instance decorrelates.
        let other: Vec<u64> = (0..200_000).filter(|&i| s.transient(8, i).is_some()).collect();
        assert_ne!(hits, other);
    }

    #[test]
    fn seed_changes_the_draw_sequence() {
        let a = {
            let _g = scoped(FaultPlan::parse("s:flip@0.05;seed=1").unwrap());
            let s = site("s").unwrap();
            (0..10_000).filter(|&i| s.transient(0, i).is_some()).collect::<Vec<u64>>()
        };
        let b = {
            let _g = scoped(FaultPlan::parse("s:flip@0.05;seed=2").unwrap());
            let s = site("s").unwrap();
            (0..10_000).filter(|&i| s.transient(0, i).is_some()).collect::<Vec<u64>>()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn window_gates_firing() {
        let _guard = scoped(FaultPlan::parse("s:flip@1.0@100..200").unwrap());
        let s = site("s").unwrap();
        assert!(s.transient(0, 99).is_none());
        assert!(s.transient(0, 100).is_some());
        assert!(s.transient(0, 199).is_some());
        assert!(s.transient(0, 200).is_none());
    }

    #[test]
    fn phased_draw_windows_on_the_clock_not_the_index() {
        // scoped() serializes installs: the first guard must drop
        // before the second plan installs.
        {
            let _guard = scoped(FaultPlan::parse("replica:flip@1.0@100..200;seed=5").unwrap());
            let s = site("replica").unwrap();
            // The window gates on `at`: the same (instance, index) draw
            // is dormant before the window, firing inside it, and
            // recovers cleanly after it closes.
            assert!(s.phased(3, 0, 99).is_none());
            assert!(s.phased(3, 0, 100).is_some());
            assert!(s.phased(3, 0, 199).is_some());
            assert!(s.phased(3, 0, 200).is_none());
            // Inside the window the draw is pure in (instance, index).
            assert_eq!(s.phased(3, 0, 150), s.phased(3, 0, 180));
        }
        let _guard = scoped(FaultPlan::parse("replica:flip@0.5@0..1000;seed=5").unwrap());
        let s = site("replica").unwrap();
        let fired: Vec<bool> = (0..64).map(|r| s.phased(r, 0, 500).is_some()).collect();
        let again: Vec<bool> = (0..64).map(|r| s.phased(r, 0, 900).is_some()).collect();
        assert_eq!(fired, again, "the per-instance draw is stable across the window");
        assert!(fired.iter().any(|&b| b) && !fired.iter().all(|&b| b));
    }

    #[test]
    fn persistent_draw_keyed_by_instance_only() {
        let _guard = scoped(FaultPlan::parse("lane:stuck1@0.5;seed=3").unwrap());
        let s = site("lane").unwrap();
        let stuck: Vec<bool> = (0..64).map(|lane| s.persistent(lane).is_some()).collect();
        let hits = stuck.iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&hits), "about half the lanes stick, got {hits}");
        assert_eq!(s.stuck_value(), Some(true));
        // Redrawing gives the same lanes.
        let again: Vec<bool> = (0..64).map(|lane| s.persistent(lane).is_some()).collect();
        assert_eq!(stuck, again);
    }

    #[test]
    fn first_matching_entry_wins_for_wildcards() {
        let _guard =
            scoped(FaultPlan::parse("rtlsim.*:stuck0@0.25;rtlsim.mac.acc:flip@0.75").unwrap());
        let s = site("rtlsim.mac.acc").unwrap();
        assert_eq!(s.kind(), FaultKind::StuckAt0);
        assert_eq!(s.rate(), 0.25);
        assert_eq!(s.name(), "rtlsim.mac.acc");
    }
}
