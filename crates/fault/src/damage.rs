//! Behavioral damage models — the *representation* difference between
//! the two arithmetics under transient faults:
//!
//! * **Binary multiplier** — a transient fault flips one bit of the
//!   `2(N−1)`-bit product; the damage is `±2^j`, i.e. potentially half
//!   the full scale when the MSB is hit.
//! * **Stochastic (proposed) MAC** — the datapath is a bitstream and a
//!   counter; a transient fault flips one stream bit, moving the counter
//!   by exactly `±2` (a 1 becomes a 0 or vice versa: one up becomes one
//!   down). Damage is bounded regardless of where the fault lands — SC's
//!   inherent error tolerance.
//!
//! This is the paper's named future-work item ("Also included in the
//! future work is the evaluation of our SC-CNN for … error resilience")
//! quantified. Faults are injected per MAC operation with probability
//! `rate`, using the counter-based deterministic RNG so runs are
//! reproducible — the exact bit-for-bit sequence the model has used
//! since it lived in `sc-neural`.

use crate::split_mix;
use sc_core::Precision;

/// Which datapath the fault hits (determines the damage model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// One random bit of the binary product word (`2(N−1)` bits).
    BinaryProductBit,
    /// One random bit of the stochastic product stream (counter moves
    /// ±2).
    StochasticStreamBit,
}

/// A seeded transient-fault injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Fault probability per MAC operation.
    pub rate: f64,
    /// Damage model.
    pub target: FaultTarget,
    /// RNG seed.
    pub seed: u64,
}

impl FaultModel {
    /// Creates a fault model.
    pub fn new(rate: f64, target: FaultTarget, seed: u64) -> Self {
        FaultModel { rate, target, seed }
    }

    /// Perturbs one product value (in `2^-(N-1)` counter units) as the
    /// `index`-th MAC of a run. Deterministic in `(seed, index)`.
    #[inline]
    pub fn perturb(&self, product: i64, index: u64, n: Precision) -> i64 {
        let r = split_mix(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0,1).
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return product;
        }
        let r2 = split_mix(r);
        match self.target {
            FaultTarget::BinaryProductBit => {
                // Flip one bit of the 2(N−1)-bit product magnitude.
                let bits = 2 * (n.bits() - 1);
                let j = (r2 % bits as u64) as u32;
                product ^ (1i64 << j)
            }
            FaultTarget::StochasticStreamBit => {
                // One stream-bit flip: the up/down counter moves by ±2.
                if r2 & 1 == 0 {
                    product + 2
                } else {
                    product - 2
                }
            }
        }
    }

    /// Worst-case damage of a single fault in counter units.
    pub fn max_damage(&self, n: Precision) -> i64 {
        match self.target {
            FaultTarget::BinaryProductBit => 1i64 << (2 * (n.bits() - 1) - 1),
            FaultTarget::StochasticStreamBit => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32) -> Precision {
        Precision::new(bits).unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let m = FaultModel::new(0.0, FaultTarget::BinaryProductBit, 1);
        for i in 0..1000u64 {
            assert_eq!(m.perturb(42, i, p(8)), 42);
        }
    }

    #[test]
    fn deterministic_in_seed_and_index() {
        let m = FaultModel::new(0.5, FaultTarget::BinaryProductBit, 7);
        assert_eq!(m.perturb(100, 3, p(8)), m.perturb(100, 3, p(8)));
    }

    #[test]
    fn observed_rate_matches_configured() {
        let m = FaultModel::new(0.1, FaultTarget::StochasticStreamBit, 9);
        let hits = (0..100_000u64).filter(|&i| m.perturb(0, i, p(8)) != 0).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn stochastic_damage_is_bounded_binary_is_not() {
        let n = p(9);
        let sc = FaultModel::new(1.0, FaultTarget::StochasticStreamBit, 3);
        let bin = FaultModel::new(1.0, FaultTarget::BinaryProductBit, 3);
        let mut max_sc = 0i64;
        let mut max_bin = 0i64;
        for i in 0..10_000u64 {
            max_sc = max_sc.max(sc.perturb(0, i, n).abs());
            max_bin = max_bin.max(bin.perturb(0, i, n).abs());
        }
        assert_eq!(max_sc, 2);
        assert!(max_bin >= 1 << 10, "binary max damage {max_bin}");
        assert_eq!(sc.max_damage(n), 2);
        assert_eq!(bin.max_damage(n), 1 << 15);
    }
}
