//! Deterministic fault injection for the whole workspace.
//!
//! The paper closes by arguing that "for future technologies in which
//! variability and noise are expected to grow, the advantages of SC may
//! be greater", and names error-resilience evaluation as future work.
//! This crate makes that evaluation a first-class workload: components
//! register named injection *sites* (e.g. `rtlsim.mac.stream`,
//! `mem.sram`), a [`FaultPlan`] arms a subset of those sites with a
//! fault kind, rate, and optional cycle window, and every draw is a pure
//! function of `(plan seed, site name, instance key, index)` — so a
//! faulty run is exactly as reproducible as a clean one, at any thread
//! count.
//!
//! # Arming a plan
//!
//! Plans come from the `SC_FAULTS` environment variable (read once,
//! lazily) or from [`install`] in tests/benches. The spec grammar is
//! semicolon-separated entries:
//!
//! ```text
//! SC_FAULTS = entry (';' entry)*
//! entry     = 'seed=' u64
//!           | site ':' kind '@' rate ['@' start '..' end]
//! site      = exact name | prefix '*'        (first match wins)
//! kind      = 'flip' | 'stuck0' | 'stuck1' | 'starve'
//! rate      = f64 in [0, 1]                  (0 ⇒ site stays disarmed)
//! ```
//!
//! e.g. `SC_FAULTS="rtlsim.mac.stream:flip@1e-3;mem.*:flip@1e-4;seed=7"`.
//!
//! A rate of zero is indistinguishable from an absent entry: [`site`]
//! returns `None`, components take their fault-free fast path, and the
//! run is bitwise identical to one with `SC_FAULTS` unset.
//!
//! # Telemetry
//!
//! Every fired draw increments the global `fault.injected` counter and a
//! per-site `fault.injected.<site>` counter, and emits a `fault.inject`
//! event when tracing is active. Detection/correction layers report
//! through [`record_detected`], [`record_corrected`], [`record_masked`],
//! and [`record_degraded`], which land in every bench manifest via the
//! metrics snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod damage;
pub mod plan;
pub mod site;

pub use damage::{FaultModel, FaultTarget};
pub use plan::{FaultKind, FaultPlan, SiteSpec};
pub use site::{
    clear, install, installed_spec, record_corrected, record_degraded, record_detected,
    record_masked, scoped, site, try_load_env, FaultSite, ScopedPlan,
};

/// SplitMix64 finalizer — the workspace's counter-based fault RNG. Kept
/// in one place so the neural damage model, the site draws, and the
/// serving layer's retry jitter share the exact bit-for-bit sequence:
/// any deterministic draw in the workspace is `split_mix(key ^ counter
/// mixes)`, a pure function of its inputs with no hidden state.
#[inline]
pub fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
