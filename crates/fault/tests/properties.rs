//! Property tests for the damage bounds the fault model encodes
//! (ISSUE 3): a stochastic stream-bit flip always moves the counter by
//! exactly ±2, while a binary product-bit flip can reach `2^(2N-3)`.

use sc_core::Precision;
use sc_fault::{FaultModel, FaultTarget};

fn p(bits: u32) -> Precision {
    Precision::new(bits).unwrap()
}

#[test]
fn stream_bit_flip_moves_counter_by_exactly_two_at_every_precision() {
    for bits in 4..=10 {
        let n = p(bits);
        let m = FaultModel::new(1.0, FaultTarget::StochasticStreamBit, 11 + bits as u64);
        let mut saw_plus = false;
        let mut saw_minus = false;
        for index in 0..5_000u64 {
            // Sweep products across the counter range too — the damage
            // must be value-independent.
            let product = (index as i64 % 101) - 50;
            let delta = m.perturb(product, index, n) - product;
            assert!(
                delta == 2 || delta == -2,
                "N={bits}: stream-bit flip moved counter by {delta}, expected ±2"
            );
            saw_plus |= delta == 2;
            saw_minus |= delta == -2;
        }
        assert!(saw_plus && saw_minus, "N={bits}: both damage directions must occur");
        assert_eq!(m.max_damage(n), 2);
    }
}

#[test]
fn binary_product_bit_flip_reaches_half_scale() {
    for bits in 4..=10 {
        let n = p(bits);
        let m = FaultModel::new(1.0, FaultTarget::BinaryProductBit, 13 + bits as u64);
        // Worst case: the MSB of the 2(N-1)-bit product flips, damage
        // 2^(2N-3). Starting from product 0 every flip is +2^j.
        let bound = 1i64 << (2 * (bits - 1) - 1);
        let mut max_seen = 0i64;
        for index in 0..20_000u64 {
            let delta = m.perturb(0, index, n).abs();
            assert!(delta > 0, "rate-1.0 model must always fire");
            assert!(delta.count_ones() == 1, "single-bit flip damage must be a power of two");
            assert!(delta <= bound, "N={bits}: damage {delta} exceeds bound {bound}");
            max_seen = max_seen.max(delta);
        }
        assert_eq!(
            max_seen, bound,
            "N={bits}: the MSB flip (damage 2^(2N-3) = {bound}) must be reachable"
        );
        assert_eq!(m.max_damage(n), bound);
    }
}

#[test]
fn damage_ratio_grows_with_precision() {
    // The resilience argument sharpens with precision: binary worst-case
    // damage doubles per extra bit while SC stays at ±2.
    let mut prev = 0i64;
    for bits in 4..=10 {
        let n = p(bits);
        let bin = FaultModel::new(1.0, FaultTarget::BinaryProductBit, 1).max_damage(n);
        let sc = FaultModel::new(1.0, FaultTarget::StochasticStreamBit, 1).max_damage(n);
        assert_eq!(sc, 2);
        assert!(bin > prev, "binary damage bound must grow with N");
        prev = bin;
    }
}
