//! Property-style tests for the synthetic dataset generators, driven by
//! a deterministic seeded sweep.

use sc_core::rng::SmallRng;
use sc_datasets::{cifar_like, mnist_like};

/// Same seed → identical dataset; different seed → different pixels.
#[test]
fn mnist_like_seeded_determinism() {
    let mut rng = SmallRng::seed_from_u64(0xd5_0001);
    for _ in 0..8 {
        let count = rng.gen_range_usize(1..31);
        let seed = rng.next_u64();
        let a = mnist_like(count, seed);
        let b = mnist_like(count, seed);
        assert_eq!(a, b);
        let c = mnist_like(count, seed.wrapping_add(1));
        assert_ne!(a, c);
    }
}

/// All pixels stay in [0, 1] and labels in 0..10 for both datasets.
#[test]
fn pixel_and_label_ranges() {
    let mut rng = SmallRng::seed_from_u64(0xd5_0002);
    for _ in 0..6 {
        let count = rng.gen_range_usize(1..21);
        let seed = rng.next_u64();
        for ds in [mnist_like(count, seed), cifar_like(count, seed)] {
            for (img, label) in ds.iter() {
                assert!(label < 10);
                assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }
}

/// Labels cycle round-robin, so any prefix is nearly class-balanced.
#[test]
fn labels_are_round_robin() {
    let mut rng = SmallRng::seed_from_u64(0xd5_0003);
    for _ in 0..8 {
        let count = rng.gen_range_usize(10..51);
        let ds = cifar_like(count, rng.next_u64());
        for (i, &l) in ds.labels().iter().enumerate() {
            assert_eq!(l as usize, i % 10);
        }
    }
}

/// A longer dataset starts with the same samples as a shorter one of the
/// same seed (generation is streaming, not global).
#[test]
fn prefix_stability() {
    let mut rng = SmallRng::seed_from_u64(0xd5_0004);
    for _ in 0..6 {
        let short = rng.gen_range_usize(1..11);
        let extra = rng.gen_range_usize(1..11);
        let seed = rng.next_u64();
        let a = mnist_like(short, seed);
        let b = mnist_like(short + extra, seed);
        for i in 0..short {
            assert_eq!(a.get(i), b.get(i), "sample {i} differs");
        }
    }
}
