//! Property tests for the synthetic dataset generators.

use proptest::prelude::*;
use sc_datasets::{cifar_like, mnist_like};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed → identical dataset; different seed → different pixels.
    #[test]
    fn mnist_like_seeded_determinism(count in 1usize..=30, seed in any::<u64>()) {
        let a = mnist_like(count, seed);
        let b = mnist_like(count, seed);
        prop_assert_eq!(&a, &b);
        let c = mnist_like(count, seed.wrapping_add(1));
        prop_assert_ne!(&a, &c);
    }

    /// All pixels stay in [0, 1] and labels in 0..10 for both datasets.
    #[test]
    fn pixel_and_label_ranges(count in 1usize..=20, seed in any::<u64>()) {
        for ds in [mnist_like(count, seed), cifar_like(count, seed)] {
            for (img, label) in ds.iter() {
                prop_assert!(label < 10);
                prop_assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    /// Labels cycle round-robin, so any prefix is nearly class-balanced.
    #[test]
    fn labels_are_round_robin(count in 10usize..=50, seed in any::<u64>()) {
        let ds = cifar_like(count, seed);
        for (i, &l) in ds.labels().iter().enumerate() {
            prop_assert_eq!(l as usize, i % 10);
        }
    }

    /// A longer dataset starts with the same samples as a shorter one of
    /// the same seed (generation is streaming, not global).
    #[test]
    fn prefix_stability(short in 1usize..=10, extra in 1usize..=10, seed in any::<u64>()) {
        let a = mnist_like(short, seed);
        let b = mnist_like(short + extra, seed);
        for i in 0..short {
            prop_assert_eq!(a.get(i), b.get(i), "sample {} differs", i);
        }
    }
}
