//! The in-memory labelled image dataset container.

/// A labelled set of images stored as flat `f32` arrays in CHW order,
/// pixel values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<Vec<f32>>,
    labels: Vec<u8>,
    channels: usize,
    height: usize,
    width: usize,
}

impl Dataset {
    /// Creates a dataset from parts.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent (images vs labels, or any image
    /// not matching `channels·height·width`).
    pub fn new(
        images: Vec<Vec<f32>>,
        labels: Vec<u8>,
        channels: usize,
        height: usize,
        width: usize,
    ) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        let expect = channels * height * width;
        assert!(
            images.iter().all(|i| i.len() == expect),
            "image size mismatch (expected {expect})"
        );
        Dataset { images, labels, channels, height, width }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Image shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Returns the `i`-th sample as `(pixels, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> (&[f32], u8) {
        (&self.images[i], self.labels[i])
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Iterates over `(pixels, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u8)> {
        self.images.iter().map(Vec::as_slice).zip(self.labels.iter().copied())
    }

    /// Splits off the first `n` samples into a new dataset (e.g. a
    /// validation split), leaving the rest in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_off_front(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len());
        let rest_images = self.images.split_off(n);
        let rest_labels = self.labels.split_off(n);

        Dataset {
            images: std::mem::replace(&mut self.images, rest_images),
            labels: std::mem::replace(&mut self.labels, rest_labels),
            channels: self.channels,
            height: self.height,
            width: self.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(vec![vec![0.0; 4], vec![0.5; 4], vec![1.0; 4]], vec![0, 1, 2], 1, 2, 2)
    }

    #[test]
    fn construction_and_access() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.shape(), (1, 2, 2));
        let (img, label) = d.get(1);
        assert_eq!(img, &[0.5; 4]);
        assert_eq!(label, 1);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn split_off_front() {
        let mut d = tiny();
        let front = d.split_off_front(2);
        assert_eq!(front.len(), 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(0).1, 2);
        assert_eq!(front.get(0).1, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(vec![vec![0.0; 4]], vec![0, 1], 1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_size_panics() {
        let _ = Dataset::new(vec![vec![0.0; 3]], vec![0], 1, 2, 2);
    }
}
