//! Small rasterization helpers shared by the dataset generators: inverse
//! affine sampling with bilinear interpolation, and noise.

use sc_core::rng::SmallRng;

/// A 2D affine transform `output → source` (inverse mapping), i.e. for an
/// output pixel `(x, y)` the sampled source coordinate is
/// `(a·x + b·y + tx, c·x + d·y + ty)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Row 1: `a, b, tx`.
    pub a: f32,
    /// Row 1 y-coefficient.
    pub b: f32,
    /// Row 1 translation.
    pub tx: f32,
    /// Row 2: `c, d, ty`.
    pub c: f32,
    /// Row 2 y-coefficient.
    pub d: f32,
    /// Row 2 translation.
    pub ty: f32,
}

impl Affine {
    /// Builds the inverse map for "rotate by `angle`, scale by `s`, then
    /// translate so source center `(cx_src, cy_src)` lands at output
    /// center `(cx_out, cy_out)`".
    pub fn rotate_scale(
        angle: f32,
        s: f32,
        cx_src: f32,
        cy_src: f32,
        cx_out: f32,
        cy_out: f32,
    ) -> Self {
        // Inverse of rotate+scale is rotate(-angle)/s.
        let (sin, cos) = angle.sin_cos();
        let inv = 1.0 / s;
        let (a, b) = (cos * inv, sin * inv);
        let (c, d) = (-sin * inv, cos * inv);
        Affine {
            a,
            b,
            tx: cx_src - a * cx_out - b * cy_out,
            c,
            d,
            ty: cy_src - c * cx_out - d * cy_out,
        }
    }

    /// Maps an output coordinate to the source coordinate.
    #[inline]
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        (self.a * x + self.b * y + self.tx, self.c * x + self.d * y + self.ty)
    }
}

/// Samples a source image (row-major `h × w`, values in `[0, 1]`) at a
/// fractional coordinate with bilinear interpolation; out-of-bounds reads
/// return 0.
pub fn bilinear(src: &[f32], w: usize, h: usize, x: f32, y: f32) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let sample = |xi: i64, yi: i64| -> f32 {
        if xi < 0 || yi < 0 || xi >= w as i64 || yi >= h as i64 {
            0.0
        } else {
            src[yi as usize * w + xi as usize]
        }
    };
    let (x0, y0) = (x0 as i64, y0 as i64);
    let v00 = sample(x0, y0);
    let v10 = sample(x0 + 1, y0);
    let v01 = sample(x0, y0 + 1);
    let v11 = sample(x0 + 1, y0 + 1);
    (v00 * (1.0 - fx) + v10 * fx) * (1.0 - fy) + (v01 * (1.0 - fx) + v11 * fx) * fy
}

/// Adds approximately Gaussian noise (`σ = sigma`, Irwin–Hall of 4
/// uniforms) to every pixel and clamps to `[0, 1]`.
pub fn add_noise(pixels: &mut [f32], sigma: f32, rng: &mut SmallRng) {
    for p in pixels {
        let g: f32 = (0..4).map(|_| rng.gen_f32()).sum::<f32>() - 2.0; // var 1/3
        *p = (*p + g * sigma * 1.732_050_8).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_affine_round_trips() {
        let t = Affine::rotate_scale(0.0, 1.0, 5.0, 5.0, 5.0, 5.0);
        let (x, y) = t.apply(3.0, 7.0);
        assert!((x - 3.0).abs() < 1e-5 && (y - 7.0).abs() < 1e-5);
    }

    #[test]
    fn rotation_by_quarter_turn() {
        // Output (1, 0) relative to center should sample source (0, -1)
        // relative to center for a +90° rotation (inverse map is -90°).
        let t = Affine::rotate_scale(std::f32::consts::FRAC_PI_2, 1.0, 0.0, 0.0, 0.0, 0.0);
        let (x, y) = t.apply(1.0, 0.0);
        assert!((x - 0.0).abs() < 1e-5, "x={x}");
        assert!((y + 1.0).abs() < 1e-5, "y={y}");
    }

    #[test]
    fn bilinear_interpolates() {
        // 2×1 image [0, 1]: midpoint is 0.5.
        let img = [0.0, 1.0];
        assert!((bilinear(&img, 2, 1, 0.5, 0.0) - 0.5).abs() < 1e-6);
        // Out of bounds is 0.
        assert_eq!(bilinear(&img, 2, 1, -2.0, 0.0), 0.0);
        assert_eq!(bilinear(&img, 2, 1, 0.0, 5.0), 0.0);
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let mut a = vec![0.5f32; 100];
        let mut b = vec![0.5f32; 100];
        add_noise(&mut a, 0.1, &mut SmallRng::seed_from_u64(3));
        add_noise(&mut b, 0.1, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(a.iter().any(|&p| (p - 0.5).abs() > 1e-4));
    }
}
