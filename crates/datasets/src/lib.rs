//! # sc-datasets — deterministic synthetic image-classification datasets
//!
//! The paper evaluates its SC-CNN on MNIST and CIFAR-10. Those datasets
//! are not redistributable inside this repository, so this crate provides
//! **procedurally generated substitutes** with the properties that matter
//! for the experiment (see DESIGN.md §3):
//!
//! * [`mnist_like`] — 28×28 grayscale images of ten distorted digit
//!   glyphs: an "easy" task that a small CNN saturates quickly, like
//!   MNIST.
//! * [`cifar_like`] — 32×32 RGB images of ten colored shape/texture
//!   classes with clutter, occlusion and noise: a "hard" task where
//!   arithmetic error visibly moves accuracy, like CIFAR-10.
//!
//! Everything is seeded: the same seed always produces the same dataset,
//! so experiments are exactly reproducible.
//!
//! ```
//! use sc_datasets::{mnist_like, Dataset};
//! let train: Dataset = mnist_like(100, 7);
//! assert_eq!(train.len(), 100);
//! assert_eq!(train.shape(), (1, 28, 28));
//! let (image, label) = train.get(0);
//! assert_eq!(image.len(), 28 * 28);
//! assert!(label < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cifar;
mod dataset;
pub mod export;
mod glyphs;
mod mnist;
mod raster;
pub mod stats;

pub use cifar::cifar_like;
pub use dataset::Dataset;
pub use mnist::mnist_like;

/// Number of classes in both synthetic datasets (as in MNIST / CIFAR-10).
pub const NUM_CLASSES: usize = 10;
