//! Exporting samples as PGM/PPM images for visual inspection.

use crate::Dataset;
use std::io::{self, Write};

/// Writes sample `i` of a dataset as a binary PGM (grayscale) or PPM
/// (3-channel) image. A `&mut` writer can be passed.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if `i` is out of bounds or the channel count is neither 1
/// nor 3.
pub fn write_pnm<W: Write>(data: &Dataset, i: usize, mut w: W) -> io::Result<()> {
    let (c, h, width) = data.shape();
    let (pixels, _) = data.get(i);
    match c {
        1 => {
            writeln!(w, "P5\n{width} {h}\n255")?;
            let bytes: Vec<u8> =
                pixels.iter().map(|&p| (p.clamp(0.0, 1.0) * 255.0) as u8).collect();
            w.write_all(&bytes)
        }
        3 => {
            writeln!(w, "P6\n{width} {h}\n255")?;
            // CHW → interleaved RGB.
            let plane = h * width;
            let mut bytes = Vec::with_capacity(3 * plane);
            for p in 0..plane {
                for ch in 0..3 {
                    bytes.push((pixels[ch * plane + p].clamp(0.0, 1.0) * 255.0) as u8);
                }
            }
            w.write_all(&bytes)
        }
        other => panic!("unsupported channel count {other} (expected 1 or 3)"),
    }
}

/// Writes the first `count` samples to `dir` as `sample_<i>_class<l>.pgm`
/// / `.ppm` files; creates the directory if needed. Returns the paths
/// written.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn export_samples(
    data: &Dataset,
    count: usize,
    dir: &std::path::Path,
) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let (c, _, _) = data.shape();
    let ext = if c == 1 { "pgm" } else { "ppm" };
    let mut paths = Vec::new();
    for i in 0..count.min(data.len()) {
        let (_, label) = data.get(i);
        let path = dir.join(format!("sample_{i:03}_class{label}.{ext}"));
        let file = std::fs::File::create(&path)?;
        write_pnm(data, i, std::io::BufWriter::new(file))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cifar_like, mnist_like};

    #[test]
    fn pgm_header_and_size() {
        let d = mnist_like(1, 1);
        let mut buf = Vec::new();
        write_pnm(&d, 0, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n28 28\n255\n"));
        assert_eq!(buf.len(), b"P5\n28 28\n255\n".len() + 28 * 28);
    }

    #[test]
    fn ppm_header_and_size() {
        let d = cifar_like(1, 1);
        let mut buf = Vec::new();
        write_pnm(&d, 0, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n32 32\n255\n"));
        assert_eq!(buf.len(), b"P6\n32 32\n255\n".len() + 3 * 32 * 32);
    }

    #[test]
    fn export_writes_files() {
        let d = mnist_like(3, 7);
        let dir = std::env::temp_dir().join("scnn_export_test");
        let paths = export_samples(&d, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists());
            std::fs::remove_file(p).unwrap();
        }
        let _ = std::fs::remove_dir(&dir);
    }
}
