//! The MNIST-like synthetic dataset: 28×28 grayscale distorted digit
//! glyphs.

use crate::glyphs::{glyph, GLYPH_H, GLYPH_W};
use crate::raster::{add_noise, bilinear, Affine};
use crate::{Dataset, NUM_CLASSES};
use sc_core::rng::SmallRng;

/// Output image side length.
pub const SIDE: usize = 28;

/// Generates `count` MNIST-like samples with the given seed. Labels are
/// balanced round-robin over the ten digits; each sample applies a random
/// rotation (±15°), scale (0.75–1.15), translation (±2.5 px), per-image
/// contrast, stroke blur, and pixel noise to the reference glyph.
pub fn mnist_like(count: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d6e_6973_745f_6c6b);
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let digit = (i % NUM_CLASSES) as u8;
        images.push(render_digit(digit, &mut rng));
        labels.push(digit);
    }
    Dataset::new(images, labels, 1, SIDE, SIDE)
}

/// Rasterizes one distorted digit.
fn render_digit(digit: u8, rng: &mut SmallRng) -> Vec<f32> {
    // Up-sample the glyph bitmap to a smooth source image first
    // (2× with a soft edge) so that bilinear sampling gives anti-aliased
    // strokes like real handwriting scans.
    const UP: usize = 2;
    let (sw, sh) = (GLYPH_W * UP, GLYPH_H * UP);
    let g = glyph(digit);
    let mut src = vec![0.0f32; sw * sh];
    for (gy, row) in g.iter().enumerate() {
        for (gx, &cell) in row.iter().enumerate() {
            if cell == 1 {
                for dy in 0..UP {
                    for dx in 0..UP {
                        src[(gy * UP + dy) * sw + gx * UP + dx] = 1.0;
                    }
                }
            }
        }
    }
    // One box-blur pass softens stroke edges.
    let src = box_blur(&src, sw, sh);

    let angle = rng.gen_range_f32(-0.26f32..0.26); // ±15°
    let scale = rng.gen_range_f32(0.75f32..1.15);
    let jx = rng.gen_range_f32(-2.5f32..2.5);
    let jy = rng.gen_range_f32(-2.5f32..2.5);
    let contrast = rng.gen_range_f32(0.75f32..1.0);

    // The glyph occupies sh source pixels and should span ~20 output
    // pixels at scale 1 (MNIST digits are ~20 px in the 28-px field).
    let base_scale = 20.0 / sh as f32 * scale;
    let t = Affine::rotate_scale(
        angle,
        base_scale,
        sw as f32 / 2.0,
        sh as f32 / 2.0,
        SIDE as f32 / 2.0 + jx,
        SIDE as f32 / 2.0 + jy,
    );

    let mut out = vec![0.0f32; SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            let (sx, sy) = t.apply(x as f32, y as f32);
            out[y * SIDE + x] = bilinear(&src, sw, sh, sx, sy) * contrast;
        }
    }
    add_noise(&mut out, 0.03, rng);
    out
}

fn box_blur(src: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                    if nx >= 0 && ny >= 0 && nx < w as i64 && ny < h as i64 {
                        sum += src[ny as usize * w + nx as usize];
                        cnt += 1.0;
                    }
                }
            }
            out[y * w + x] = sum / cnt;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = mnist_like(20, 42);
        let b = mnist_like(20, 42);
        assert_eq!(a, b);
        let c = mnist_like(20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn shape_and_range() {
        let d = mnist_like(10, 1);
        assert_eq!(d.shape(), (1, 28, 28));
        for (img, _) in d.iter() {
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn labels_are_balanced() {
        let d = mnist_like(100, 5);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn images_have_ink() {
        let d = mnist_like(30, 9);
        for (i, (img, label)) in d.iter().enumerate() {
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "sample {i} (digit {label}) nearly blank: {ink}");
        }
    }

    #[test]
    fn same_digit_varies_between_samples() {
        let d = mnist_like(40, 11);
        // Samples 0 and 10 are both digit 0 but distorted differently.
        assert_eq!(d.get(0).1, d.get(10).1);
        assert_ne!(d.get(0).0, d.get(10).0);
    }
}
