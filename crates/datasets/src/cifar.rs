//! The CIFAR-like synthetic dataset: 32×32 RGB images of ten shape/texture
//! classes with clutter and noise — hard enough that arithmetic precision
//! visibly affects a small CNN's accuracy, like CIFAR-10.

use crate::raster::add_noise;
use crate::{Dataset, NUM_CLASSES};
use sc_core::rng::SmallRng;

/// Output image side length.
pub const SIDE: usize = 32;

/// Generates `count` CIFAR-like samples with the given seed.
///
/// Each class is a distinct shape/texture family rendered with a
/// class-characteristic (but jittered) hue, over a random gradient
/// background, with a random distractor patch and pixel noise:
///
/// | class | pattern              | base hue |
/// |-------|----------------------|----------|
/// | 0     | filled disc          | red      |
/// | 1     | filled square        | green    |
/// | 2     | triangle             | blue     |
/// | 3     | horizontal stripes   | yellow   |
/// | 4     | vertical stripes     | magenta  |
/// | 5     | checkerboard         | cyan     |
/// | 6     | ring (annulus)       | orange   |
/// | 7     | plus / cross         | violet   |
/// | 8     | diagonal waves       | teal     |
/// | 9     | blob cluster         | olive    |
pub fn cifar_like(count: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6369_6661_725f_6c6b);
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = (i % NUM_CLASSES) as u8;
        images.push(render_class(class, &mut rng));
        labels.push(class);
    }
    Dataset::new(images, labels, 3, SIDE, SIDE)
}

/// Class base colors (RGB in `[0, 1]`).
const BASE_COLORS: [[f32; 3]; 10] = [
    [0.85, 0.20, 0.20], // red
    [0.20, 0.80, 0.25], // green
    [0.25, 0.35, 0.90], // blue
    [0.88, 0.85, 0.20], // yellow
    [0.85, 0.25, 0.85], // magenta
    [0.20, 0.85, 0.85], // cyan
    [0.95, 0.55, 0.15], // orange
    [0.55, 0.25, 0.85], // violet
    [0.15, 0.60, 0.55], // teal
    [0.55, 0.55, 0.20], // olive
];

fn render_class(class: u8, rng: &mut SmallRng) -> Vec<f32> {
    let s = SIDE as f32;
    // Background: random two-corner gradient of a random dim color.
    let bg_a: [f32; 3] =
        [rng.gen_range_f32(0.0..0.45), rng.gen_range_f32(0.0..0.45), rng.gen_range_f32(0.0..0.45)];
    let bg_b: [f32; 3] =
        [rng.gen_range_f32(0.0..0.45), rng.gen_range_f32(0.0..0.45), rng.gen_range_f32(0.0..0.45)];
    let horizontal_grad = rng.gen_bool(0.5);

    // Foreground color: class base + jitter.
    let base = BASE_COLORS[class as usize];
    let jitter =
        |c: f32, rng: &mut SmallRng| (c + rng.gen_range_f32(-0.15f32..0.15)).clamp(0.05, 1.0);
    let fg = [jitter(base[0], rng), jitter(base[1], rng), jitter(base[2], rng)];

    // Shape placement.
    let cx = rng.gen_range_f32(0.35 * s..0.65 * s);
    let cy = rng.gen_range_f32(0.35 * s..0.65 * s);
    let radius = rng.gen_range_f32(0.22 * s..0.38 * s);
    let angle = rng.gen_range_f32(0.0f32..std::f32::consts::TAU);
    let (sin, cos) = angle.sin_cos();
    let stripe_period = rng.gen_range_f32(3.0f32..6.0);
    let phase = rng.gen_range_f32(0.0f32..stripe_period);

    // Blob cluster parameters (class 9).
    let blobs: Vec<(f32, f32, f32)> = (0..5)
        .map(|_| {
            (
                rng.gen_range_f32(0.2 * s..0.8 * s),
                rng.gen_range_f32(0.2 * s..0.8 * s),
                rng.gen_range_f32(0.08 * s..0.16 * s),
            )
        })
        .collect();

    let mut chw = vec![0.0f32; 3 * SIDE * SIDE];
    for y in 0..SIDE {
        for x in 0..SIDE {
            let (fx, fy) = (x as f32 + 0.5, y as f32 + 0.5);
            let t = if horizontal_grad { fx / s } else { fy / s };
            let mut px = [
                bg_a[0] * (1.0 - t) + bg_b[0] * t,
                bg_a[1] * (1.0 - t) + bg_b[1] * t,
                bg_a[2] * (1.0 - t) + bg_b[2] * t,
            ];

            // Rotated local coordinates around the shape center.
            let dx = fx - cx;
            let dy = fy - cy;
            let rx = dx * cos + dy * sin;
            let ry = -dx * sin + dy * cos;

            let coverage: f32 = match class {
                0 => soft_step(radius - (dx * dx + dy * dy).sqrt()),
                1 => soft_step(radius - rx.abs().max(ry.abs())),
                2 => {
                    // Upward triangle in rotated frame.
                    let h = radius * 1.3;
                    let inside =
                        ry < h / 2.0 && ry > -h / 2.0 && rx.abs() < (ry + h / 2.0) / h * radius;
                    if inside {
                        1.0
                    } else {
                        0.0
                    }
                }
                3 => stripe(fy, stripe_period, phase),
                4 => stripe(fx, stripe_period, phase),
                5 => {
                    let cell = stripe_period.max(4.0);
                    let a = ((fx + phase) / cell).floor() as i64;
                    let b = ((fy + phase) / cell).floor() as i64;
                    if (a + b) % 2 == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }
                6 => {
                    let r = (dx * dx + dy * dy).sqrt();
                    soft_step(radius - r) * soft_step(r - radius * 0.55)
                }
                7 => {
                    let arm = radius * 0.35;
                    let in_cross = (rx.abs() < arm && ry.abs() < radius)
                        || (ry.abs() < arm && rx.abs() < radius);
                    if in_cross {
                        1.0
                    } else {
                        0.0
                    }
                }
                8 => stripe(rx + ry, stripe_period * 1.4, phase),
                _ => blobs
                    .iter()
                    .map(|&(bx, by, br)| {
                        soft_step(br - ((fx - bx).powi(2) + (fy - by).powi(2)).sqrt())
                    })
                    .fold(0.0f32, f32::max),
            };

            for c in 0..3 {
                px[c] = px[c] * (1.0 - coverage) + fg[c] * coverage;
            }
            for c in 0..3 {
                chw[c * SIDE * SIDE + y * SIDE + x] = px[c];
            }
        }
    }

    // Distractor: a small random-colored rectangle that may occlude.
    let dw = rng.gen_range_usize(3..8);
    let dh = rng.gen_range_usize(3..8);
    let dx0 = rng.gen_range_usize(0..SIDE - dw);
    let dy0 = rng.gen_range_usize(0..SIDE - dh);
    let dc: [f32; 3] = [rng.gen_f32(), rng.gen_f32(), rng.gen_f32()];
    for y in dy0..dy0 + dh {
        for x in dx0..dx0 + dw {
            for c in 0..3 {
                let p = &mut chw[c * SIDE * SIDE + y * SIDE + x];
                *p = 0.5 * *p + 0.5 * dc[c];
            }
        }
    }

    add_noise(&mut chw, 0.04, rng);
    chw
}

#[inline]
fn soft_step(d: f32) -> f32 {
    // ~1 inside (d > 0), ~0 outside, 1-pixel soft edge.
    (d + 0.5).clamp(0.0, 1.0)
}

#[inline]
fn stripe(coord: f32, period: f32, phase: f32) -> f32 {
    if ((coord + phase) / period).floor() as i64 % 2 == 0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = cifar_like(20, 42);
        let b = cifar_like(20, 42);
        assert_eq!(a, b);
        assert_ne!(a, cifar_like(20, 43));
    }

    #[test]
    fn shape_and_range() {
        let d = cifar_like(10, 1);
        assert_eq!(d.shape(), (3, 32, 32));
        for (img, _) in d.iter() {
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn labels_balanced() {
        let d = cifar_like(50, 3);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        // Mean image of each class should differ pairwise (color prior).
        let d = cifar_like(200, 7);
        let px = 3 * SIDE * SIDE;
        let mut means = vec![vec![0.0f64; px]; 10];
        let mut counts = [0usize; 10];
        for (img, label) in d.iter() {
            counts[label as usize] += 1;
            for (m, &v) in means[label as usize].iter_mut().zip(img) {
                *m += v as f64;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                let dist: f64 = means[i]
                    .iter()
                    .zip(&means[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(dist > 1.0, "classes {i} and {j} too similar ({dist})");
            }
        }
    }
}
