//! Dataset statistics: per-class pixel means and inter-class separation —
//! used to sanity-check that a generated dataset is learnable and that
//! its classes are balanced in difficulty.

use crate::Dataset;

/// Per-class pixel statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Class label.
    pub label: u8,
    /// Number of samples of this class.
    pub count: usize,
    /// Mean pixel value over all samples and positions.
    pub mean: f64,
    /// Pixel standard deviation.
    pub std: f64,
    /// Mean image (per-pixel average across the class's samples).
    pub mean_image: Vec<f64>,
}

/// Computes per-class statistics for a dataset.
pub fn class_statistics(data: &Dataset) -> Vec<ClassStats> {
    let (c, h, w) = data.shape();
    let px = c * h * w;
    let classes = data.labels().iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut sums = vec![vec![0.0f64; px]; classes];
    let mut sum = vec![0.0f64; classes];
    let mut sum2 = vec![0.0f64; classes];
    let mut counts = vec![0usize; classes];
    for (img, label) in data.iter() {
        let l = label as usize;
        counts[l] += 1;
        for (acc, &v) in sums[l].iter_mut().zip(img) {
            *acc += v as f64;
        }
        for &v in img {
            sum[l] += v as f64;
            sum2[l] += (v as f64) * (v as f64);
        }
    }
    (0..classes)
        .map(|l| {
            let n = (counts[l] * px).max(1) as f64;
            let mean = sum[l] / n;
            let var = (sum2[l] / n - mean * mean).max(0.0);
            ClassStats {
                label: l as u8,
                count: counts[l],
                mean,
                std: var.sqrt(),
                mean_image: sums[l].iter().map(|&s| s / counts[l].max(1) as f64).collect(),
            }
        })
        .collect()
}

/// Euclidean distance matrix between the class mean images — a proxy for
/// class separability (larger = easier).
pub fn class_separation(stats: &[ClassStats]) -> Vec<Vec<f64>> {
    let k = stats.len();
    let mut d = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let dist: f64 = stats[i]
                .mean_image
                .iter()
                .zip(&stats[j].mean_image)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// The smallest pairwise class separation (the hardest class pair).
pub fn min_separation(stats: &[ClassStats]) -> f64 {
    let d = class_separation(stats);
    let mut min = f64::INFINITY;
    for (i, row) in d.iter().enumerate() {
        for &v in &row[(i + 1)..] {
            min = min.min(v);
        }
    }
    if min.is_finite() {
        min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cifar_like, mnist_like};

    #[test]
    fn statistics_cover_all_classes() {
        let d = mnist_like(50, 3);
        let stats = class_statistics(&d);
        assert_eq!(stats.len(), 10);
        for s in &stats {
            assert_eq!(s.count, 5);
            assert!(s.mean > 0.0 && s.mean < 1.0);
            assert!(s.std > 0.0);
            assert_eq!(s.mean_image.len(), 28 * 28);
        }
    }

    #[test]
    fn classes_are_separated() {
        for ds in [mnist_like(100, 5), cifar_like(100, 5)] {
            let stats = class_statistics(&ds);
            let min = min_separation(&stats);
            assert!(min > 0.5, "minimum class separation {min} too small");
        }
    }

    #[test]
    fn separation_matrix_is_symmetric_with_zero_diagonal() {
        let d = cifar_like(30, 9);
        let stats = class_statistics(&d);
        let m = class_separation(&stats);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
    }

    #[test]
    fn empty_dataset_yields_no_stats() {
        let d = Dataset::new(vec![], vec![], 1, 2, 2);
        assert!(class_statistics(&d).is_empty());
        assert_eq!(min_separation(&[]), 0.0);
    }
}
