//! Telemetry neutrality: instrumenting the tile engine must not change
//! what it computes, and the counters it reports must agree with the
//! engine's own `Traffic`/cycle accounting.
//!
//! Lives in its own integration-test binary so enabling the
//! process-global metrics registry cannot race other tests that also
//! drive `run_layer`.

use std::sync::Arc;

use sc_accel::engine::{AccelArithmetic, TileEngine};
use sc_accel::layer::{ConvGeometry, Tiling};
use sc_core::Precision;
use sc_telemetry::span::{CollectingSubscriber, RecordKind};

fn test_data(g: &ConvGeometry, n: Precision) -> (Vec<i32>, Vec<i32>) {
    let h = n.half_scale() as i32;
    let input: Vec<i32> =
        (0..g.z * g.in_h * g.in_w).map(|i| ((i as i32 * 37 + 11) % (2 * h)) - h).collect();
    let weights: Vec<i32> = (0..g.m * g.depth()).map(|i| ((i as i32 * 13 + 5) % 21) - 10).collect();
    (input, weights)
}

#[test]
fn outputs_identical_with_telemetry_on_and_counters_match_traffic() {
    let g = ConvGeometry { z: 2, in_h: 7, in_w: 7, m: 3, k: 3, stride: 1 };
    let n = Precision::new(7).unwrap();
    let (input, weights) = test_data(&g, n);
    let tiling = Tiling { t_m: 2, t_r: 3, t_c: 2 };
    let engine = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8);

    // Telemetry off (the default): baseline run.
    let off = engine.run_layer(&g, &input, &weights).unwrap();

    // Telemetry on: metrics enabled, spans collected.
    sc_telemetry::metrics::reset();
    sc_telemetry::metrics::set_enabled(true);
    let collector = Arc::new(CollectingSubscriber::new());
    sc_telemetry::span::set_subscriber(collector.clone());
    let on = engine.run_layer(&g, &input, &weights).unwrap();
    sc_telemetry::span::clear_subscriber();
    sc_telemetry::metrics::set_enabled(false);
    let snap = sc_telemetry::metrics::snapshot();

    // Bitwise-identical results (outputs, cycles, traffic).
    assert_eq!(off, on);

    // Counters agree with the engine's own accounting.
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    assert_eq!(counter("accel.traffic.input_words"), on.traffic.input_words);
    assert_eq!(counter("accel.traffic.weight_words"), on.traffic.weight_words);
    assert_eq!(counter("accel.traffic.output_words"), on.traffic.output_words);
    assert_eq!(counter("accel.cycles"), on.cycles);

    // The tile-cycle histogram saw exactly one record per tile.
    let tiles = counter("accel.tiles");
    let hist = &snap.histograms.iter().find(|(k, _)| k == "accel.tile.cycles").unwrap().1;
    assert_eq!(hist.count, tiles);
    assert_eq!(hist.sum, on.cycles);

    // Spans: one layer span on the caller thread. Tiles run on the
    // sc-par pool, so per-tile telemetry is a `accel.tile.done` event
    // fired during the deterministic merge (one per tile, nested in the
    // layer span) rather than a worker-side span whose interleaving
    // would depend on scheduling.
    let recs = collector.records();
    let enters = |name: &str| {
        recs.iter().filter(|r| r.kind == RecordKind::Enter && r.name == name).count() as u64
    };
    assert_eq!(enters("accel.layer"), 1);
    let tile_done: Vec<_> = recs
        .iter()
        .filter(|r| r.kind == RecordKind::Event && r.name == "accel.tile.done")
        .collect();
    assert_eq!(tile_done.len() as u64, tiles);
    assert!(tile_done.iter().all(|r| r.depth == 1), "tile events merge inside the layer span");
}
