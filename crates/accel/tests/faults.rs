//! Engine-level fault behaviour: zero-rate transparency, SRAM staging,
//! and the detect → retry → degrade ladder of `accel.tile.output`.

use sc_accel::engine::sites;
use sc_accel::{AccelArithmetic, ConvGeometry, FaultPolicy, TileEngine, Tiling};
use sc_core::{Error, Precision};
use sc_fault::FaultPlan;

fn geometry() -> ConvGeometry {
    ConvGeometry { z: 2, in_h: 7, in_w: 7, m: 3, k: 3, stride: 1 }
}

fn data(g: &ConvGeometry, n: Precision) -> (Vec<i32>, Vec<i32>) {
    let h = n.half_scale() as i32;
    let input: Vec<i32> =
        (0..g.z * g.in_h * g.in_w).map(|i| ((i as i32 * 37 + 11) % (2 * h)) - h).collect();
    let weights: Vec<i32> = (0..g.m * g.depth()).map(|i| ((i as i32 * 13 + 5) % 21) - 10).collect();
    (input, weights)
}

fn engine(n: Precision) -> TileEngine {
    TileEngine::new(n, Tiling { t_m: 2, t_r: 2, t_c: 2 }, AccelArithmetic::ProposedSerial, 8)
}

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).unwrap()
}

#[test]
fn zero_rate_sites_leave_the_layer_bitwise_identical() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let clean = {
        let _s = sc_fault::scoped(plan(""));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    let zero = {
        let _s = sc_fault::scoped(plan("accel.*:flip@0;seed=11"));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    assert_eq!(clean, zero);
    assert!(clean.degraded_tiles.is_empty());
}

#[test]
fn sram_faults_are_scrubbed_or_masked_but_always_deterministic() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let spec = "accel.sram.weight:flip@0.02;accel.sram.input:flip@0.02;seed=8";
    let first = {
        let _s = sc_fault::scoped(plan(spec));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    let second = {
        let _s = sc_fault::scoped(plan(spec));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    assert_eq!(first, second);
    // Outputs stay inside the representable range whatever slipped
    // through parity (staging clamps into the code range).
    let clean = {
        let _s = sc_fault::scoped(plan(""));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    assert_eq!(first.traffic, clean.traffic);
}

#[test]
fn low_rate_tile_faults_are_fully_repaired_by_retry() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let clean = {
        let _s = sc_fault::scoped(plan(""));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    let _s = sc_fault::scoped(plan("accel.tile.output:flip@0.02;seed=5"));
    let run = engine(n).run_layer(&g, &input, &weights).unwrap();
    // Transient upsets always differ between the two replicas, so every
    // strike is detected and retried away: the outputs are exact.
    assert_eq!(run.outputs, clean.outputs);
    assert!(run.degraded_tiles.is_empty());
    // Verification bills at least one extra replica per tile.
    assert!(run.cycles >= 2 * clean.cycles, "{} vs {}", run.cycles, clean.cycles);
}

#[test]
fn saturating_tile_faults_exhaust_retries_and_degrade() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let clean = {
        let _s = sc_fault::scoped(plan(""));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    let spec = "accel.tile.output:flip@0.9;seed=5";
    let _s = sc_fault::scoped(plan(spec));
    let run = engine(n).run_layer(&g, &input, &weights).unwrap();
    assert!(!run.degraded_tiles.is_empty(), "rate 0.9 must exhaust the retry budget");
    // Degraded tiles come from the truncated-stream recompute: close to
    // the clean outputs (EDT quality loss), never garbage.
    let s = FaultPolicy::default().degrade_bits;
    let bound =
        (g.depth() as f64) * sc_core::mac::EarlyTerminationScMac::new(n, s).unwrap().error_bound();
    for (o, c) in run.outputs.iter().zip(&clean.outputs) {
        assert!(((o - c).abs() as f64) <= bound, "degraded output {o} too far from clean {c}");
    }
    let again = engine(n).run_layer(&g, &input, &weights).unwrap();
    assert_eq!(run, again);
}

#[test]
fn strict_policy_fails_with_retry_exhausted() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let _s = sc_fault::scoped(plan("accel.tile.output:flip@0.9;seed=5"));
    let strict =
        engine(n).with_fault_policy(FaultPolicy { retries: 1, degrade: false, degrade_bits: 5 });
    match strict.run_layer(&g, &input, &weights) {
        Err(Error::RetryExhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected RetryExhausted, got {other:?}"),
    }
}

#[test]
fn permanent_tile_faults_evade_reexecution_and_are_masked() {
    let g = geometry();
    let n = Precision::new(7).unwrap();
    let (input, weights) = data(&g, n);
    let clean = {
        let _s = sc_fault::scoped(plan(""));
        engine(n).run_layer(&g, &input, &weights).unwrap()
    };
    let _s = sc_fault::scoped(plan(format!("{}:stuck1@0.2;seed=13", sites::TILE_OUTPUT).as_str()));
    let run = engine(n).run_layer(&g, &input, &weights).unwrap();
    // A stuck flip-flop corrupts both replicas identically, so DMR
    // accepts the result: no degradation, but wrong outputs — the
    // documented blind spot that the parity SRAM covers for memory.
    assert!(run.degraded_tiles.is_empty());
    assert_ne!(run.outputs, clean.outputs);
}
