//! Property-style tests: the tile engine computes exactly the per-output
//! saturating MAC-chain sum for arbitrary geometries and tilings —
//! driven by a deterministic seeded sweep.

use sc_accel::engine::{AccelArithmetic, TileEngine};
use sc_accel::layer::{ConvGeometry, Tiling};
use sc_core::mac::{SaturatingAccumulator, SignedScMac};
use sc_core::rng::SmallRng;
use sc_core::Precision;
use sc_fixed::FixedMul;

fn golden_proposed(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
) -> Vec<i64> {
    let mac = SignedScMac::new(n);
    golden_with(g, n, input, weights, a, |w, x| mac.multiply(w, x).unwrap().value)
}

fn golden_fixed(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
) -> Vec<i64> {
    let mul = FixedMul::new(n);
    golden_with(g, n, input, weights, a, |w, x| mul.multiply(w, x).unwrap())
}

fn golden_with(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
    product: impl Fn(i32, i32) -> i64,
) -> Vec<i64> {
    let (r, c) = (g.r(), g.c());
    let mut out = vec![0i64; g.m * r * c];
    for m in 0..g.m {
        for rr in 0..r {
            for cc in 0..c {
                let mut acc = SaturatingAccumulator::new(n, a);
                for z in 0..g.z {
                    for i in 0..g.k {
                        for j in 0..g.k {
                            let w = weights[(m * g.z + z) * g.k * g.k + i * g.k + j];
                            let x = input
                                [(z * g.in_h + rr * g.stride + i) * g.in_w + cc * g.stride + j];
                            acc.add(product(w, x));
                        }
                    }
                }
                out[(m * r + rr) * c + cc] = acc.value();
            }
        }
    }
    out
}

#[test]
fn engine_matches_golden_random() {
    let mut rng = SmallRng::seed_from_u64(0xacce101);
    let mut tried = 0usize;
    while tried < 24 {
        let z = rng.gen_range_usize(1..4);
        let m = rng.gen_range_usize(1..5);
        let k = rng.gen_range_usize(1..4);
        let stride = rng.gen_range_usize(1..3);
        let g = ConvGeometry {
            z,
            in_h: k + rng.gen_range_usize(0..5),
            in_w: k + rng.gen_range_usize(0..5),
            m,
            k,
            stride,
        };
        if !g.is_valid() {
            continue;
        }
        tried += 1;
        let n = Precision::new(7).unwrap();
        let h = n.half_scale() as i32;
        let input: Vec<i32> =
            (0..g.z * g.in_h * g.in_w).map(|_| rng.gen_range_i32(-h..h)).collect();
        let weights: Vec<i32> =
            (0..g.m * g.depth()).map(|_| rng.gen_range_i32(-h / 2..h / 2 + 1)).collect();
        let tiling = Tiling {
            t_m: rng.gen_range_usize(1..4),
            t_r: rng.gen_range_usize(1..4),
            t_c: rng.gen_range_usize(1..4),
        };

        let prop_run = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(prop_run.outputs, golden_proposed(&g, n, &input, &weights, 8), "{g:?}");

        let fix_run = TileEngine::new(n, tiling, AccelArithmetic::Fixed, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(fix_run.outputs, golden_fixed(&g, n, &input, &weights, 8), "{g:?}");

        // Bit-parallel is bit-exact with serial and at least as fast.
        let par_run = TileEngine::new(n, tiling, AccelArithmetic::ProposedParallel(4), 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(par_run.outputs, prop_run.outputs, "{g:?}");
        assert!(par_run.cycles <= prop_run.cycles, "{g:?}");
    }
}

/// Tiling never changes the numerical result, only the schedule.
#[test]
fn outputs_invariant_under_tiling() {
    let mut rng = SmallRng::seed_from_u64(0xacce102);
    for _ in 0..16 {
        let n = Precision::new(6).unwrap();
        let g = ConvGeometry { z: 2, in_h: 6, in_w: 6, m: 3, k: 3, stride: 1 };
        let h = n.half_scale() as i32;
        let input: Vec<i32> = (0..g.z * 36).map(|_| rng.gen_range_i32(-h..h)).collect();
        let weights: Vec<i32> = (0..g.m * g.depth()).map(|_| rng.gen_range_i32(-h..h)).collect();
        let ta = rng.gen_range_usize(1..5);
        let tb = rng.gen_range_usize(1..5);
        let run_a = TileEngine::new(
            n,
            Tiling { t_m: ta, t_r: tb, t_c: ta },
            AccelArithmetic::ProposedSerial,
            8,
        )
        .run_layer(&g, &input, &weights)
        .unwrap();
        let run_b = TileEngine::new(
            n,
            Tiling { t_m: tb, t_r: ta, t_c: tb },
            AccelArithmetic::ProposedSerial,
            8,
        )
        .run_layer(&g, &input, &weights)
        .unwrap();
        assert_eq!(run_a.outputs, run_b.outputs, "ta={ta} tb={tb}");
    }
}
