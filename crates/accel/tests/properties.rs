//! Property tests: the tile engine computes exactly the per-output
//! saturating MAC-chain sum for arbitrary geometries and tilings.

use proptest::prelude::*;
use sc_accel::engine::{AccelArithmetic, TileEngine};
use sc_accel::layer::{ConvGeometry, Tiling};
use sc_core::mac::{SaturatingAccumulator, SignedScMac};
use sc_core::Precision;
use sc_fixed::FixedMul;

fn golden_proposed(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
) -> Vec<i64> {
    let mac = SignedScMac::new(n);
    golden_with(g, n, input, weights, a, |w, x| mac.multiply(w, x).unwrap().value)
}

fn golden_fixed(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
) -> Vec<i64> {
    let mul = FixedMul::new(n);
    golden_with(g, n, input, weights, a, |w, x| mul.multiply(w, x).unwrap())
}

fn golden_with(
    g: &ConvGeometry,
    n: Precision,
    input: &[i32],
    weights: &[i32],
    a: u32,
    product: impl Fn(i32, i32) -> i64,
) -> Vec<i64> {
    let (r, c) = (g.r(), g.c());
    let mut out = vec![0i64; g.m * r * c];
    for m in 0..g.m {
        for rr in 0..r {
            for cc in 0..c {
                let mut acc = SaturatingAccumulator::new(n, a);
                for z in 0..g.z {
                    for i in 0..g.k {
                        for j in 0..g.k {
                            let w = weights[(m * g.z + z) * g.k * g.k + i * g.k + j];
                            let x = input
                                [(z * g.in_h + rr * g.stride + i) * g.in_w + cc * g.stride + j];
                            acc.add(product(w, x));
                        }
                    }
                }
                out[(m * r + rr) * c + cc] = acc.value();
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_golden_random(
        z in 1usize..=3,
        extra_h in 0usize..=4,
        extra_w in 0usize..=4,
        m in 1usize..=4,
        k in 1usize..=3,
        stride in 1usize..=2,
        t_m in 1usize..=3,
        t_r in 1usize..=3,
        t_c in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let n = Precision::new(7).unwrap();
        let g = ConvGeometry { z, in_h: k + extra_h, in_w: k + extra_w, m, k, stride };
        prop_assume!(g.is_valid());
        let h = n.half_scale() as i32;
        let mut state = seed;
        let mut next = |range: i32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((state >> 33) as i32).rem_euclid(2 * range) - range
        };
        let input: Vec<i32> = (0..g.z * g.in_h * g.in_w).map(|_| next(h)).collect();
        let weights: Vec<i32> = (0..g.m * g.depth()).map(|_| next(h / 2)).collect();
        let tiling = Tiling { t_m, t_r, t_c };

        let prop_run = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8)
            .run_layer(&g, &input, &weights).unwrap();
        prop_assert_eq!(&prop_run.outputs, &golden_proposed(&g, n, &input, &weights, 8));

        let fix_run = TileEngine::new(n, tiling, AccelArithmetic::Fixed, 8)
            .run_layer(&g, &input, &weights).unwrap();
        prop_assert_eq!(&fix_run.outputs, &golden_fixed(&g, n, &input, &weights, 8));

        // Bit-parallel is bit-exact with serial and at least as fast.
        let par_run = TileEngine::new(n, tiling, AccelArithmetic::ProposedParallel(4), 8)
            .run_layer(&g, &input, &weights).unwrap();
        prop_assert_eq!(&par_run.outputs, &prop_run.outputs);
        prop_assert!(par_run.cycles <= prop_run.cycles);
    }

    /// Tiling never changes the numerical result, only the schedule.
    #[test]
    fn outputs_invariant_under_tiling(seed in any::<u64>(), ta in 1usize..=4, tb in 1usize..=4) {
        let n = Precision::new(6).unwrap();
        let g = ConvGeometry { z: 2, in_h: 6, in_w: 6, m: 3, k: 3, stride: 1 };
        let h = n.half_scale() as i32;
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(31);
            ((state >> 33) as i32).rem_euclid(2 * h) - h
        };
        let input: Vec<i32> = (0..g.z * 36).map(|_| next()).collect();
        let weights: Vec<i32> = (0..g.m * g.depth()).map(|_| next()).collect();
        let run_a = TileEngine::new(n, Tiling { t_m: ta, t_r: tb, t_c: ta },
            AccelArithmetic::ProposedSerial, 8).run_layer(&g, &input, &weights).unwrap();
        let run_b = TileEngine::new(n, Tiling { t_m: tb, t_r: ta, t_c: tb },
            AccelArithmetic::ProposedSerial, 8).run_layer(&g, &input, &weights).unwrap();
        prop_assert_eq!(run_a.outputs, run_b.outputs);
    }
}
