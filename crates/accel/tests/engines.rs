//! Cross-engine golden check for the tile engine: a full convolution
//! layer must be bitwise identical — outputs, cycles, traffic, and tile
//! profiles — whichever execution engine evaluates the MACs.
//!
//! Engine selection is process-global; the tests here serialize on a
//! lock and restore the default engine on exit (even panicking exits).

use std::sync::Mutex;

use sc_accel::engine::{AccelArithmetic, TileEngine};
use sc_accel::layer::{ConvGeometry, Tiling};
use sc_core::bitplane::{self, EngineKind};
use sc_core::Precision;
use sc_telemetry::metrics::counter;

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

struct Restore;

impl Drop for Restore {
    fn drop(&mut self) {
        bitplane::set_engine(None);
        sc_telemetry::metrics::set_enabled(false);
    }
}

fn layer_inputs(g: &ConvGeometry, half: i32) -> (Vec<i32>, Vec<i32>) {
    let input =
        (0..g.z * g.in_h * g.in_w).map(|i| ((i as i32 * 37 + 11) % (2 * half)) - half).collect();
    let weights = (0..g.m * g.depth()).map(|i| ((i as i32 * 13 + 5) % 21) - 10).collect();
    (input, weights)
}

#[test]
fn run_layer_bitwise_identical_across_engines() {
    let _g = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _r = Restore;
    // Counter recording is off by default outside bench runs; a clean
    // scoped plan keeps an ambient SC_FAULTS (the CI fault gate) from
    // perturbing the word-billing assertions.
    sc_telemetry::metrics::set_enabled(true);
    let _clean = sc_fault::scoped(sc_fault::FaultPlan::parse("").unwrap());
    let n = Precision::new(8).unwrap();
    let g = ConvGeometry { z: 4, in_h: 10, in_w: 10, m: 6, k: 3, stride: 1 };
    let (input, weights) = layer_inputs(&g, n.half_scale() as i32);
    let words = counter("accel.bitplane.words");
    for arithmetic in [
        AccelArithmetic::ProposedSerial,
        AccelArithmetic::ProposedParallel(8),
        AccelArithmetic::Fixed,
    ] {
        let engine = TileEngine::new(n, Tiling::default(), arithmetic, 2);
        let run = |e| {
            bitplane::set_engine(Some(e));
            engine.run_layer(&g, &input, &weights).unwrap()
        };
        let before = words.get();
        let cycle = run(EngineKind::CycleAccurate);
        assert_eq!(words.get(), before, "cycle engine billed bitplane words: {arithmetic:?}");
        let bitplane = run(EngineKind::Bitplane);
        assert_eq!(cycle, bitplane, "layer runs diverged across engines: {arithmetic:?}");
        if arithmetic != AccelArithmetic::Fixed {
            assert!(words.get() > before, "bitplane run billed no words: {arithmetic:?}");
        }
    }
}

#[test]
fn degraded_tier_bitwise_identical_across_engines() {
    // The serve ladder's EDT tiers (effective bits 6 and 4) go through
    // run_layer_at; the truncated prefixes must agree across engines.
    let _g = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _r = Restore;
    let n = Precision::new(8).unwrap();
    let g = ConvGeometry { z: 3, in_h: 8, in_w: 8, m: 4, k: 3, stride: 1 };
    let (input, weights) = layer_inputs(&g, n.half_scale() as i32);
    let engine = TileEngine::new(n, Tiling::default(), AccelArithmetic::ProposedSerial, 2);
    for s in [6u32, 4] {
        let run = |e| {
            bitplane::set_engine(Some(e));
            engine.run_layer_at(&g, &input, &weights, Some(s)).unwrap()
        };
        assert_eq!(run(EngineKind::CycleAccurate), run(EngineKind::Bitplane), "effective_bits={s}");
    }
}
