//! The tile scheduler: executes the Fig. 4 loop nest on a bank of
//! BISC-MVMs (or fixed-point MACs) and counts cycles.

use std::sync::{Arc, OnceLock};

use crate::layer::{ConvGeometry, Tiling};
use crate::memory::{ParitySram, Traffic};
use sc_core::bitplane::{self, EngineKind};
use sc_core::mac::{EarlyTerminationScMac, SaturatingAccumulator};
use sc_core::mvm::{BiscMvm, BitParallelMvm};
use sc_core::{Error, Precision};
use sc_fault::{FaultKind, FaultSite};
use sc_fixed::FixedMul;
use sc_telemetry::metrics::{counter, histogram, Counter, Histogram};
use sc_telemetry::TileProfile;

/// Canonical `sc-fault` site names registered by this crate.
pub mod sites {
    /// Input-buffer SRAM words (see [`crate::memory::ParitySram`]).
    pub const SRAM_INPUT: &str = "accel.sram.input";
    /// Weight-buffer SRAM words.
    pub const SRAM_WEIGHT: &str = "accel.sram.weight";
    /// The tile output vector as it leaves the MAC array.
    pub const TILE_OUTPUT: &str = "accel.tile.output";
}

/// One scalar-vector accumulate step `w · x⃗` of a vector unit; returns the
/// cycles it took.
type AccumulateFn<'a> = dyn FnMut(i32, &[i32]) -> Result<u64, Error> + 'a;

/// A tile's verified result: the cycle breakdown, the bitplane words
/// scanned (base compute plus any degraded recompute), the accepted
/// output writes, and whether they came from the degraded
/// (truncated-stream) recompute.
type VerifiedTile = (TileProfile, u64, Vec<(usize, i64)>, bool);

/// A tile's raw compute result: billed cycles, cycles the truncated
/// stream saved versus the full serial schedule (0 outside EDT mode),
/// packed bitplane words the popcount engine scanned for the tile
/// (0 under `SC_ENGINE=cycle` and for fixed-point arithmetic), and the
/// write-back list.
type ComputedTile = (u64, u64, u64, Vec<(usize, i64)>);

/// Cached metric handles for the engine hot loops (name lookup happens
/// once; recording is a flag check + relaxed atomic).
struct EngineMetrics {
    input_words: Counter,
    weight_words: Counter,
    output_words: Counter,
    cycles: Counter,
    tiles: Counter,
    tile_cycles: Arc<Histogram>,
    verify_cycles: Counter,
    degraded_cycles: Counter,
    edt_saved: Counter,
    bitplane_words: Counter,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        input_words: counter("accel.traffic.input_words"),
        weight_words: counter("accel.traffic.weight_words"),
        output_words: counter("accel.traffic.output_words"),
        cycles: counter("accel.cycles"),
        tiles: counter("accel.tiles"),
        tile_cycles: histogram("accel.tile.cycles", &[16, 64, 256, 1024, 4096, 16384, 65536]),
        verify_cycles: counter("accel.cycles.verify"),
        degraded_cycles: counter("accel.cycles.degraded"),
        edt_saved: counter("accel.edt.saved_cycles"),
        bitplane_words: counter("accel.bitplane.words"),
    })
}

/// Which MAC arithmetic the accelerator instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelArithmetic {
    /// The proposed bit-serial BISC-MVM.
    ProposedSerial,
    /// The proposed bit-parallel BISC-MVM with parallelism `b`.
    ProposedParallel(u32),
    /// Fixed-point binary MACs (1 cycle per term).
    Fixed,
}

/// How the engine reacts when tile verification keeps failing
/// (`accel.tile.output` armed, see [`TileEngine::with_fault_policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Recompute-and-compare retries after the first verification
    /// attempt (default 2).
    pub retries: u32,
    /// `true` → after the retry budget the tile is recomputed in the
    /// truncated-stream progressive-precision mode and accepted
    /// (recorded in [`LayerRun::degraded_tiles`]); `false` → the layer
    /// fails with [`Error::RetryExhausted`].
    pub degrade: bool,
    /// Effective weight bits `s` of the degraded recompute (clamped to
    /// `1..=N` at use).
    pub degrade_bits: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy { retries: 2, degrade: true, degrade_bits: 5 }
    }
}

/// Result of running one convolution layer through the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRun {
    /// Output counters, `[m][r][c]` row-major, in units of `2^-(N-1)`.
    pub outputs: Vec<i64>,
    /// Total cycles for the layer. For the proposed designs each tile
    /// takes `max_m Σ_{z,i,j} ceil(|W[m][z][i][j]|/b)` cycles (the `T_M`
    /// weight groups run in lock step, so the slowest group paces the
    /// tile); fixed-point takes `d` cycles per tile. Verification
    /// replicas and degraded recomputes are billed here too.
    pub cycles: u64,
    /// Off-chip/buffer traffic accounting.
    pub traffic: Traffic,
    /// Tile indices (in the canonical `(m1, r1, c1)` enumeration) whose
    /// outputs exhausted the retry budget and were served from the
    /// truncated-stream progressive-precision fallback. Empty whenever
    /// `accel.tile.output` is disarmed.
    pub degraded_tiles: Vec<usize>,
    /// Per-tile cycle breakdown (compute / DMR verify / EDT recompute /
    /// EDT savings), in the same canonical tile order. Tile totals sum
    /// to [`LayerRun::cycles`].
    pub tiles: Vec<TileProfile>,
}

/// The accelerator: a bank of `T_M` vector units of `p = T_R·T_C` lanes.
#[derive(Debug, Clone)]
pub struct TileEngine {
    n: Precision,
    tiling: Tiling,
    arithmetic: AccelArithmetic,
    extra_bits: u32,
    policy: FaultPolicy,
    fault_key: u64,
}

impl TileEngine {
    /// Creates an engine at precision `n` with the given tiling and
    /// arithmetic. `extra_bits` is the accumulator headroom `A`.
    pub fn new(n: Precision, tiling: Tiling, arithmetic: AccelArithmetic, extra_bits: u32) -> Self {
        TileEngine {
            n,
            tiling,
            arithmetic,
            extra_bits,
            policy: FaultPolicy::default(),
            fault_key: 0,
        }
    }

    /// Overrides the fault-handling policy (retry budget / degradation).
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the fault-draw key decorrelating this engine's layers from
    /// siblings (e.g. pass the layer index when running a network).
    pub fn with_fault_key(mut self, key: u64) -> Self {
        self.fault_key = key;
        self
    }

    /// The configured tiling.
    pub fn tiling(&self) -> Tiling {
        self.tiling
    }

    /// Runs one convolution layer. `input` is `[z][y][x]` row-major
    /// (`z·in_h·in_w` codes), `weights` is `[m][z][i][j]` row-major.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] if the geometry fails
    /// validation, [`Error::CodeOutOfRange`] if any code exceeds the
    /// precision, or [`Error::LengthMismatch`] if the buffers do not
    /// match the geometry.
    pub fn run_layer(
        &self,
        g: &ConvGeometry,
        input: &[i32],
        weights: &[i32],
    ) -> Result<LayerRun, Error> {
        self.run_layer_at(g, input, weights, None)
    }

    /// [`run_layer`](TileEngine::run_layer) at a reduced quality tier:
    /// `effective_bits = Some(s)` runs **every** MAC in the
    /// truncated-stream progressive-precision mode (top `s` weight bits,
    /// `2^(N−s)`-fold shorter streams — see
    /// [`sc_core::mac::EarlyTerminationScMac`]), whatever the configured
    /// arithmetic. This is the serving layer's overload-degradation
    /// entry point: the same fallback PR 3 uses per-tile after retry
    /// exhaustion, applied layer-wide up front. `None` is the
    /// full-precision path, bitwise identical to `run_layer`.
    ///
    /// # Errors
    ///
    /// As [`run_layer`](TileEngine::run_layer), plus
    /// [`Error::UnsupportedPrecision`] if `s` is 0 or exceeds `N`.
    pub fn run_layer_at(
        &self,
        g: &ConvGeometry,
        input: &[i32],
        weights: &[i32],
        effective_bits: Option<u32>,
    ) -> Result<LayerRun, Error> {
        if !g.is_valid() {
            return Err(Error::InvalidGeometry { geometry: format!("{g:?}") });
        }
        if let Some(s) = effective_bits {
            // Validate before any tile work is spawned.
            EarlyTerminationScMac::new(self.n, s)?;
        }
        if input.len() != g.z * g.in_h * g.in_w {
            return Err(Error::LengthMismatch {
                expected: g.z * g.in_h * g.in_w,
                actual: input.len(),
            });
        }
        if weights.len() != g.m * g.depth() {
            return Err(Error::LengthMismatch { expected: g.m * g.depth(), actual: weights.len() });
        }

        let (r, c) = (g.r(), g.c());
        let p = self.tiling.lanes();
        let mut outputs = vec![0i64; g.m * r * c];
        let mut cycles = 0u64;
        let mut traffic = Traffic::default();
        let mut degraded_tiles = Vec::new();
        let mut tile_profiles = Vec::new();

        let arithmetic = self.arithmetic;
        let _layer = sc_telemetry::span!("accel.layer", arithmetic, g.m, g.z, r, c);
        let metrics = engine_metrics();

        // When the SRAM sites are armed, the operand buffers are staged
        // through the parity-protected banks once per layer (every word
        // written, then read back through the scrubbing controller).
        // Disarmed banks skip the staging entirely, leaving the borrowed
        // slices — and the computed bits — untouched.
        let staged_input = self.stage_codes("input", input, self.fault_key);
        let input: &[i32] = staged_input.as_deref().unwrap_or(input);
        let staged_weights =
            self.stage_codes("weight", weights, self.fault_key ^ 0x9216_D5D9_8979_FB1B);
        let weights: &[i32] = staged_weights.as_deref().unwrap_or(weights);
        let tile_site = sc_fault::site(sites::TILE_OUTPUT);

        // Fig. 4: outer tile loops over (m1, r1, c1), enumerated in the
        // canonical nest order. Tiles are independent (disjoint output
        // regions), so they run on the sc-par pool; every tile's result
        // is then merged below in this fixed enumeration order, which
        // keeps outputs, cycle totals, and traffic counters bitwise
        // identical at any `SC_THREADS`.
        let mut tiles: Vec<(usize, usize, usize)> = Vec::new();
        for m1 in (0..g.m).step_by(self.tiling.t_m) {
            for r1 in (0..r).step_by(self.tiling.t_r) {
                for c1 in (0..c).step_by(self.tiling.t_c) {
                    tiles.push((m1, r1, c1));
                }
            }
        }

        let pool = sc_par::Pool::global();
        let results: Vec<Result<TileDone, Error>> = pool.parallel_map(tiles.len(), |t| {
            let (m1, r1, c1) = tiles[t];
            let m_hi = (m1 + self.tiling.t_m).min(g.m);
            let r_hi = (r1 + self.tiling.t_r).min(r);
            let c_hi = (c1 + self.tiling.t_c).min(c);
            // The input patch this tile touches is loaded once into the
            // input buffer; weights stream per (m,z,i,j); outputs are
            // written back once as binary numbers (this is the whole
            // point of BISC).
            let patch_h = (r_hi - r1 - 1) * g.stride + g.k;
            let patch_w = (c_hi - c1 - 1) * g.stride + g.k;
            let clean = self.run_tile(
                g,
                input,
                weights,
                (m1, m_hi),
                (r1, r_hi),
                (c1, c_hi),
                p,
                effective_bits,
            )?;
            let (profile, bitplane_words, writes, degraded) = match &tile_site {
                Some(site) => self.verify_tile(
                    site,
                    t,
                    clean,
                    g,
                    input,
                    weights,
                    (m1, m_hi),
                    (r1, r_hi),
                    (c1, c_hi),
                    p,
                    effective_bits,
                )?,
                None => (
                    TileProfile { compute: clean.0, verify: 0, recompute: 0, edt_saved: clean.1 },
                    clean.2,
                    clean.3,
                    false,
                ),
            };
            Ok(TileDone {
                input_words: (g.z * patch_h * patch_w) as u64,
                weight_words: ((m_hi - m1) * g.depth()) as u64,
                output_words: ((m_hi - m1) * (r_hi - r1) * (c_hi - c1)) as u64,
                bitplane_words,
                profile,
                writes,
                degraded,
            })
        });

        // Deterministic merge: per-tile accumulators folded in tile
        // order (metrics and trace events fire here, on the caller's
        // thread, so telemetry layout does not depend on scheduling).
        for (t, result) in results.into_iter().enumerate() {
            let done = result?;
            let (m1, r1, c1) = tiles[t];
            traffic.input_words += done.input_words;
            traffic.weight_words += done.weight_words;
            traffic.output_words += done.output_words;
            metrics.input_words.incr(done.input_words);
            metrics.weight_words.incr(done.weight_words);
            metrics.output_words.incr(done.output_words);
            let tile_cycles = done.profile.cycles();
            metrics.tiles.incr(1);
            metrics.cycles.incr(tile_cycles);
            metrics.tile_cycles.record(tile_cycles);
            metrics.verify_cycles.incr(done.profile.verify);
            metrics.degraded_cycles.incr(done.profile.recompute);
            metrics.edt_saved.incr(done.profile.edt_saved);
            metrics.bitplane_words.incr(done.bitplane_words);
            sc_telemetry::event!("accel.tile.done", m1, r1, c1, tile_cycles);
            if done.degraded {
                degraded_tiles.push(t);
                sc_telemetry::event!("accel.tile.degraded", m1, r1, c1);
            }
            cycles += tile_cycles;
            tile_profiles.push(done.profile);
            for (index, value) in done.writes {
                outputs[index] = value;
            }
        }
        Ok(LayerRun { outputs, cycles, traffic, degraded_tiles, tiles: tile_profiles })
    }

    /// Stages a code buffer through a parity-protected SRAM bank when
    /// its fault site is armed; `None` leaves the original buffer in
    /// use. Scrub-on-read repairs what parity can see; masked
    /// corruption is clamped into the code range (the operand register
    /// physically holds `N` bits).
    fn stage_codes(&self, bank: &str, codes: &[i32], key: u64) -> Option<Vec<i32>> {
        sc_fault::site(&format!("accel.sram.{bank}"))?;
        let bias = self.n.half_scale() as i64;
        let (lo, hi) = self.n.signed_range();
        let mut sram = ParitySram::new(bank, self.n.bits(), codes.len());
        sram.set_fault_key(key);
        for (addr, &code) in codes.iter().enumerate() {
            sram.write(addr, (code as i64 + bias) as u64);
        }
        Some(
            (0..codes.len())
                .map(|addr| (sram.read(addr) as i64 - bias).clamp(lo, hi) as i32)
                .collect(),
        )
    }

    /// Verifies one tile's outputs under an armed `accel.tile.output`
    /// site: each attempt computes two corrupted replicas of the clean
    /// result (the MAC array is deterministic, so the replicas differ
    /// only through fault draws), range-checks them against the
    /// accumulator limits, and compares. Transient and starvation
    /// faults draw per `(tile, attempt, replica)`, so retries see fresh
    /// exposure; stuck-at faults draw per tile only — a permanent
    /// defect corrupts both replicas identically and slips through
    /// re-execution as `fault.masked`, exactly as in hardware.
    ///
    /// After `1 + retries` failed attempts the tile either degrades to
    /// the truncated-stream progressive-precision recompute (accepted,
    /// recorded, billed) or fails with [`Error::RetryExhausted`].
    #[allow(clippy::too_many_arguments)]
    fn verify_tile(
        &self,
        site: &FaultSite,
        t: usize,
        clean: ComputedTile,
        g: &ConvGeometry,
        input: &[i32],
        weights: &[i32],
        m_range: (usize, usize),
        r_range: (usize, usize),
        c_range: (usize, usize),
        p: usize,
        effective_bits: Option<u32>,
    ) -> Result<VerifiedTile, Error> {
        let (base_cycles, base_saved, base_words, clean_writes) = clean;
        let acc = SaturatingAccumulator::new(self.n, self.extra_bits);
        let (lo, hi) = acc.range();
        let width = acc.width();
        let mut profile =
            TileProfile { compute: base_cycles, verify: 0, recompute: 0, edt_saved: base_saved };
        let attempts = 1 + self.policy.retries;
        for attempt in 0..attempts {
            // The first attempt reuses the base compute as replica A;
            // every comparison needs one more replica.
            profile.verify += if attempt == 0 { base_cycles } else { 2 * base_cycles };
            let a = self.corrupt_writes(site, t, attempt, 0, width, &clean_writes);
            let b = self.corrupt_writes(site, t, attempt, 1, width, &clean_writes);
            if a.iter().any(|&(_, v)| v < lo || v > hi) {
                sc_fault::record_detected(1);
                continue;
            }
            if a != b {
                sc_fault::record_detected(1);
                continue;
            }
            if a != clean_writes {
                sc_fault::record_masked(1);
            }
            return Ok((profile, base_words, a, false));
        }
        if !self.policy.degrade {
            return Err(Error::RetryExhausted { what: format!("tile {t} outputs"), attempts });
        }
        sc_fault::record_degraded(1);
        // Under a layer-wide quality tier the degraded recompute never
        // runs *above* the tier it is rescuing.
        let s = self
            .policy
            .degrade_bits
            .clamp(1, self.n.bits())
            .min(effective_bits.unwrap_or(u32::MAX));
        let (deg_cycles, deg_saved, deg_words, deg_writes) =
            self.run_tile(g, input, weights, m_range, r_range, c_range, p, Some(s))?;
        profile.recompute = deg_cycles;
        profile.edt_saved += deg_saved;
        Ok((profile, base_words + deg_words, deg_writes, true))
    }

    /// Applies the `accel.tile.output` fault draws to one replica of a
    /// tile's write-back list.
    fn corrupt_writes(
        &self,
        site: &FaultSite,
        t: usize,
        attempt: u32,
        replica: u64,
        width: u32,
        writes: &[(usize, i64)],
    ) -> Vec<(usize, i64)> {
        let kind = site.kind();
        let per_attempt = matches!(kind, FaultKind::Transient | FaultKind::Starve);
        let mut instance = self.fault_key ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if per_attempt {
            instance ^= (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            instance ^= (replica + 1).wrapping_mul(0x1656_67B1_9E37_79F9);
        }
        let mut out = writes.to_vec();
        for (k, (_, v)) in out.iter_mut().enumerate() {
            if let Some(entropy) = site.transient(instance, k as u64) {
                let bit = (entropy >> 8) as u32 % width;
                *v = match kind {
                    FaultKind::Transient => flip_word_bit(*v, bit, width),
                    FaultKind::StuckAt0 => force_word_bit(*v, bit, width, false),
                    FaultKind::StuckAt1 => force_word_bit(*v, bit, width, true),
                    FaultKind::Starve => 0,
                };
            }
        }
        out
    }

    /// Executes one `(m1..m_hi, r1..r_hi, c1..c_hi)` tile; returns its
    /// cycle count (the max over the `T_M` weight groups) and the
    /// `(output index, value)` write-back list. Writes are returned
    /// rather than applied so tiles can run on worker threads; the
    /// caller applies them in deterministic tile order (regions are
    /// disjoint, so order is cosmetic — but determinism is the
    /// contract). `edt_s = Some(s)` runs the degraded progressive-
    /// precision mode: every MAC terminates after the top `s` weight
    /// bits, whatever the configured arithmetic; the returned savings
    /// are the cycles truncation shaved off the full-precision serial
    /// schedule (`max_m Σ|w|`) for this tile.
    #[allow(clippy::too_many_arguments)]
    fn run_tile(
        &self,
        g: &ConvGeometry,
        input: &[i32],
        weights: &[i32],
        (m1, m_hi): (usize, usize),
        (r1, r_hi): (usize, usize),
        (c1, c_hi): (usize, usize),
        p: usize,
        edt_s: Option<u32>,
    ) -> Result<ComputedTile, Error> {
        let (r, c) = (g.r(), g.c());
        let mut xs = vec![0i32; p];
        let mut tile_cycles = 0u64;
        let mut tile_full = 0u64;
        // Bitplane work is billed as a sum over all T_M units and lanes
        // (real popcount work), unlike cycles, which are the max over
        // the lock-stepped units (latency).
        let bp_on = bitplane::engine() == EngineKind::Bitplane;
        let mut tile_words = 0u64;
        let mut writes = Vec::with_capacity((m_hi - m1) * (r_hi - r1) * (c_hi - c1));

        for m in m1..m_hi {
            // One vector unit per output feature map in the tile; the
            // T_M units run in parallel, so the tile's latency is the
            // max of the per-unit latencies.
            let mut unit_cycles = 0u64;
            let mut run_unit = |accumulate: &mut AccumulateFn<'_>| -> Result<(), Error> {
                for z in 0..g.z {
                    for i in 0..g.k {
                        for j in 0..g.k {
                            let w = weights[(m * g.z + z) * g.k * g.k + i * g.k + j];
                            // Gather the T_R·T_C input pixels (lanes
                            // beyond the layer edge process x = 0, like
                            // disabled PEs in hardware).
                            for (lane, slot) in xs.iter_mut().enumerate() {
                                let rr = r1 + lane / self.tiling.t_c;
                                let cc = c1 + lane % self.tiling.t_c;
                                *slot = if rr < r_hi && cc < c_hi {
                                    let y = rr * g.stride + i;
                                    let x = cc * g.stride + j;
                                    input[(z * g.in_h + y) * g.in_w + x]
                                } else {
                                    0
                                };
                            }
                            unit_cycles += accumulate(w, &xs)?;
                        }
                    }
                }
                Ok(())
            };

            let mut unit_full = 0u64;
            let values: Vec<i64> = if let Some(s) = edt_s {
                let edt = EarlyTerminationScMac::new(self.n, s)?;
                let mut accs = vec![SaturatingAccumulator::new(self.n, self.extra_bits); p];
                run_unit(&mut |w, xs| {
                    // What the full-precision serial schedule would have
                    // billed for this term: |w| cycles.
                    unit_full += w.unsigned_abs() as u64;
                    let mut term_cycles = 0;
                    for (acc, &x) in accs.iter_mut().zip(xs) {
                        let product = edt.multiply(w, x)?;
                        term_cycles = product.cycles;
                        acc.add(product.value);
                    }
                    if bp_on {
                        // Each lane scans the truncated prefix.
                        tile_words += bitplane::words_in_prefix(term_cycles) * p as u64;
                    }
                    Ok(term_cycles)
                })?;
                accs.iter().map(|a| a.value()).collect()
            } else {
                match self.arithmetic {
                    AccelArithmetic::ProposedSerial => {
                        let mut mvm = BiscMvm::new(self.n, p, self.extra_bits);
                        run_unit(&mut |w, xs| {
                            let k = mvm.accumulate(w, xs)?;
                            if bp_on {
                                // The |w|-cycle prefix is scanned once per
                                // term: the occupancy counts are shared
                                // across all lanes.
                                tile_words += bitplane::words_in_prefix(k);
                            }
                            Ok(k)
                        })?;
                        mvm.read()
                    }
                    AccelArithmetic::ProposedParallel(b) => {
                        let mut mvm = BitParallelMvm::new(self.n, p, self.extra_bits, b)?;
                        run_unit(&mut |w, xs| {
                            let cycles = mvm.accumulate(w, xs)?;
                            if bp_on {
                                let k = w.unsigned_abs() as u64;
                                tile_words +=
                                    bitplane::words_in_parallel_term(k, b as u64) * p as u64;
                            }
                            Ok(cycles)
                        })?;
                        mvm.read()
                    }
                    AccelArithmetic::Fixed => {
                        let mul = FixedMul::new(self.n);
                        let mut accs =
                            vec![
                                sc_core::mac::SaturatingAccumulator::new(self.n, self.extra_bits);
                                p
                            ];
                        run_unit(&mut |w, xs| {
                            for (acc, &x) in accs.iter_mut().zip(xs) {
                                acc.add(mul.multiply(w, x)?);
                            }
                            Ok(1) // one cycle per term
                        })?;
                        accs.iter().map(|a| a.value()).collect()
                    }
                }
            };
            tile_cycles = tile_cycles.max(unit_cycles);
            tile_full = tile_full.max(unit_full);

            for (lane, &v) in values.iter().enumerate() {
                let rr = r1 + lane / self.tiling.t_c;
                let cc = c1 + lane % self.tiling.t_c;
                if rr < r_hi && cc < c_hi {
                    writes.push(((m * r + rr) * c + cc, v));
                }
            }
        }
        // Outside EDT mode tile_full stays 0, so savings read 0.
        Ok((tile_cycles, tile_full.saturating_sub(tile_cycles), tile_words, writes))
    }
}

/// Per-tile accumulator produced on a worker thread and merged by
/// [`TileEngine::run_layer`] in deterministic tile order.
struct TileDone {
    input_words: u64,
    weight_words: u64,
    output_words: u64,
    /// Packed bitplane words the popcount engine scanned for this tile
    /// (0 under the cycle engine and for fixed-point arithmetic).
    bitplane_words: u64,
    profile: TileProfile,
    writes: Vec<(usize, i64)>,
    degraded: bool,
}

/// Flips one flip-flop of a `width`-bit two's-complement word, staying
/// sign-extended (mirrors `SaturatingAccumulator::flip_bit`, but on the
/// write-back value, which may sit outside any live accumulator).
fn flip_word_bit(value: i64, bit: u32, width: u32) -> i64 {
    let mask = (1u64 << width) - 1;
    let raw = (value as u64 ^ (1u64 << (bit % width))) & mask;
    sign_extend(raw, width)
}

/// Forces one flip-flop of a `width`-bit two's-complement word.
fn force_word_bit(value: i64, bit: u32, width: u32, high: bool) -> i64 {
    let mask = (1u64 << width) - 1;
    let select = 1u64 << (bit % width);
    let raw = if high { value as u64 | select } else { value as u64 & !select } & mask;
    sign_extend(raw, width)
}

fn sign_extend(raw: u64, width: u32) -> i64 {
    let mask = (1u64 << width) - 1;
    let sign = 1u64 << (width - 1);
    if raw & sign != 0 {
        (raw | !mask) as i64
    } else {
        raw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::mac::{SaturatingAccumulator, SignedScMac};

    fn small_geometry() -> ConvGeometry {
        ConvGeometry { z: 2, in_h: 7, in_w: 7, m: 3, k: 3, stride: 1 }
    }

    fn test_data(g: &ConvGeometry, n: Precision) -> (Vec<i32>, Vec<i32>) {
        let h = n.half_scale() as i32;
        let input: Vec<i32> =
            (0..g.z * g.in_h * g.in_w).map(|i| ((i as i32 * 37 + 11) % (2 * h)) - h).collect();
        let weights: Vec<i32> =
            (0..g.m * g.depth()).map(|i| ((i as i32 * 13 + 5) % 21) - 10).collect();
        (input, weights)
    }

    /// Golden model: per-output saturating sum of signed SC-MAC products.
    fn golden(g: &ConvGeometry, n: Precision, input: &[i32], weights: &[i32], a: u32) -> Vec<i64> {
        let mac = SignedScMac::new(n);
        let (r, c) = (g.r(), g.c());
        let mut out = vec![0i64; g.m * r * c];
        for m in 0..g.m {
            for rr in 0..r {
                for cc in 0..c {
                    let mut acc = SaturatingAccumulator::new(n, a);
                    for z in 0..g.z {
                        for i in 0..g.k {
                            for j in 0..g.k {
                                let w = weights[(m * g.z + z) * g.k * g.k + i * g.k + j];
                                let x = input
                                    [(z * g.in_h + rr * g.stride + i) * g.in_w + cc * g.stride + j];
                                acc.add(mac.multiply(w, x).unwrap().value);
                            }
                        }
                    }
                    out[(m * r + rr) * c + cc] = acc.value();
                }
            }
        }
        out
    }

    #[test]
    fn engine_matches_golden_for_awkward_tilings() {
        let g = small_geometry();
        let n = Precision::new(7).unwrap();
        let (input, weights) = test_data(&g, n);
        let gold = golden(&g, n, &input, &weights, 8);
        // Tile sizes that do and do not divide the output evenly.
        for tiling in [
            Tiling { t_m: 1, t_r: 1, t_c: 1 },
            Tiling { t_m: 2, t_r: 2, t_c: 3 },
            Tiling { t_m: 4, t_r: 5, t_c: 5 },
            Tiling { t_m: 3, t_r: 4, t_c: 2 },
        ] {
            let engine = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8);
            let run = engine.run_layer(&g, &input, &weights).unwrap();
            assert_eq!(run.outputs, gold, "tiling {tiling:?}");
        }
    }

    #[test]
    fn bit_parallel_engine_is_bit_exact_and_faster() {
        let g = small_geometry();
        let n = Precision::new(8).unwrap();
        let (input, weights) = test_data(&g, n);
        let tiling = Tiling { t_m: 2, t_r: 2, t_c: 2 };
        let serial = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        let parallel = TileEngine::new(n, tiling, AccelArithmetic::ProposedParallel(8), 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(serial.outputs, parallel.outputs);
        assert!(parallel.cycles < serial.cycles, "{} vs {}", parallel.cycles, serial.cycles);
        assert!(parallel.cycles >= serial.cycles / 8);
    }

    #[test]
    fn fixed_engine_takes_d_cycles_per_unit() {
        let g = small_geometry();
        let n = Precision::new(8).unwrap();
        let (input, weights) = test_data(&g, n);
        let tiling = Tiling { t_m: 3, t_r: 5, t_c: 5 };
        let run = TileEngine::new(n, tiling, AccelArithmetic::Fixed, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        // One tile in R/C (5×5 covers the whole output), one in M.
        assert_eq!(run.cycles, g.depth() as u64);
    }

    #[test]
    fn proposed_cycles_equal_max_group_weight_sum() {
        let g = ConvGeometry { z: 1, in_h: 5, in_w: 5, m: 2, k: 3, stride: 1 };
        let n = Precision::new(8).unwrap();
        let input = vec![10i32; 25];
        // Group 0 weights sum |w| = 9·2 = 18; group 1 sum = 9·5 = 45.
        let mut weights = vec![2i32; 9];
        weights.extend(vec![-5i32; 9]);
        let tiling = Tiling { t_m: 2, t_r: 3, t_c: 3 };
        let run = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(run.cycles, 45);
    }

    #[test]
    fn traffic_accounting_counts_every_output_once() {
        let g = small_geometry();
        let n = Precision::new(6).unwrap();
        let (input, weights) = test_data(&g, n);
        let tiling = Tiling { t_m: 2, t_r: 2, t_c: 2 };
        let run = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8)
            .run_layer(&g, &input, &weights)
            .unwrap();
        assert_eq!(run.traffic.output_words, (g.m * g.r() * g.c()) as u64);
        assert!(run.traffic.input_words > 0);
        assert!(run.traffic.weight_words >= (g.m * g.depth()) as u64);
    }

    #[test]
    fn invalid_geometry_is_an_error_not_a_panic() {
        let n = Precision::new(6).unwrap();
        let engine = TileEngine::new(n, Tiling::default(), AccelArithmetic::Fixed, 2);
        // Kernel larger than the input plane: a malformed request must
        // surface as a serving-path error.
        let g = ConvGeometry { z: 1, in_h: 2, in_w: 8, m: 1, k: 3, stride: 1 };
        match engine.run_layer(&g, &[0; 16], &[0; 9]) {
            Err(Error::InvalidGeometry { .. }) => {}
            other => panic!("expected InvalidGeometry, got {other:?}"),
        }
    }

    #[test]
    fn full_tier_is_bitwise_identical_to_run_layer() {
        let g = small_geometry();
        let n = Precision::new(7).unwrap();
        let (input, weights) = test_data(&g, n);
        let engine = TileEngine::new(
            n,
            Tiling { t_m: 2, t_r: 2, t_c: 3 },
            AccelArithmetic::ProposedSerial,
            8,
        );
        let full = engine.run_layer(&g, &input, &weights).unwrap();
        let tier_n = engine.run_layer_at(&g, &input, &weights, Some(n.bits())).unwrap();
        // s = N early termination is exactly the full multiplier, but
        // EDT latency is ⌊|w|⌋ per term with no shift — cycles may
        // differ from the lock-step MVM; outputs must not.
        assert_eq!(full.outputs, tier_n.outputs);
    }

    #[test]
    fn degraded_tiers_shorten_streams_and_bound_error() {
        let g = small_geometry();
        let n = Precision::new(8).unwrap();
        let (input, weights) = test_data(&g, n);
        let engine = TileEngine::new(
            n,
            Tiling { t_m: 2, t_r: 2, t_c: 2 },
            AccelArithmetic::ProposedSerial,
            8,
        );
        let full = engine.run_layer(&g, &input, &weights).unwrap();
        let mut prev_cycles = full.cycles;
        for s in [6u32, 4, 2] {
            let run = engine.run_layer_at(&g, &input, &weights, Some(s)).unwrap();
            // Streams shrink geometrically (to zero once 2^(N−s) exceeds
            // every |w|), so cycles are monotone and below full.
            assert!(run.cycles < full.cycles, "s={s}: {} !< {}", run.cycles, full.cycles);
            assert!(run.cycles <= prev_cycles, "s={s}: {} > {prev_cycles}", run.cycles);
            prev_cycles = run.cycles;
            // Per-output error vs the full-precision run is bounded by
            // depth × (EDT bound + the SC-MAC's own N/2 bound).
            let bound = g.depth() as f64
                * (EarlyTerminationScMac::new(n, s).unwrap().error_bound() + n.bits() as f64 / 2.0);
            for (a, b) in run.outputs.iter().zip(&full.outputs) {
                assert!(((a - b).abs() as f64) <= bound, "s={s}: |{a} - {b}| > {bound}");
            }
        }
        assert!(engine.run_layer_at(&g, &input, &weights, Some(0)).is_err());
        assert!(engine.run_layer_at(&g, &input, &weights, Some(9)).is_err());
    }

    #[test]
    fn tile_profiles_sum_to_layer_cycles_and_track_edt_savings() {
        let g = small_geometry();
        let n = Precision::new(8).unwrap();
        let (input, weights) = test_data(&g, n);
        let engine = TileEngine::new(
            n,
            Tiling { t_m: 2, t_r: 2, t_c: 2 },
            AccelArithmetic::ProposedSerial,
            8,
        );
        let full = engine.run_layer(&g, &input, &weights).unwrap();
        assert!(!full.tiles.is_empty());
        assert_eq!(full.tiles.iter().map(TileProfile::cycles).sum::<u64>(), full.cycles);
        // Clean full-precision run: pure compute, nothing saved.
        for tp in &full.tiles {
            assert_eq!(tp.verify, 0);
            assert_eq!(tp.recompute, 0);
            assert_eq!(tp.edt_saved, 0);
            assert_eq!(tp.compute, tp.cycles());
        }
        // A truncated tier saves cycles versus the full serial schedule,
        // and the savings account exactly for the latency gap per tile.
        let tier = engine.run_layer_at(&g, &input, &weights, Some(4)).unwrap();
        assert_eq!(tier.tiles.iter().map(TileProfile::cycles).sum::<u64>(), tier.cycles);
        let saved: u64 = tier.tiles.iter().map(|t| t.edt_saved).sum();
        assert!(saved > 0, "s=4 must shorten streams on this data");
        for (tp, fp) in tier.tiles.iter().zip(&full.tiles) {
            assert_eq!(tp.compute + tp.edt_saved, fp.compute, "savings + billed = full schedule");
        }
    }

    #[test]
    fn mismatched_buffers_rejected() {
        let g = small_geometry();
        let n = Precision::new(6).unwrap();
        let engine = TileEngine::new(n, Tiling::default(), AccelArithmetic::Fixed, 2);
        assert!(engine.run_layer(&g, &[0; 3], &[0; 54]).is_err());
        assert!(engine.run_layer(&g, &[0; 98], &[0; 3]).is_err());
    }
}
