//! Convolution layer geometry and the tiling of Fig. 4.

/// Geometry of one convolution layer, in the paper's Fig. 4 notation:
/// `Z` input channels of `H×W`, `M` output channels of `R×C`, `K×K`
/// kernels, stride `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels `Z`.
    pub z: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output feature maps `M`.
    pub m: usize,
    /// Kernel size `K`.
    pub k: usize,
    /// Stride `S`.
    pub stride: usize,
}

impl ConvGeometry {
    /// Output rows `R`.
    pub fn r(&self) -> usize {
        (self.in_h - self.k) / self.stride + 1
    }

    /// Output columns `C`.
    pub fn c(&self) -> usize {
        (self.in_w - self.k) / self.stride + 1
    }

    /// Accumulation depth per output: `d = K²·Z`.
    pub fn depth(&self) -> usize {
        self.k * self.k * self.z
    }

    /// Total MAC operations in the layer.
    pub fn macs(&self) -> u64 {
        (self.m * self.r() * self.c() * self.depth()) as u64
    }

    /// Validates the geometry (kernel fits, nonzero sizes).
    pub fn is_valid(&self) -> bool {
        self.z > 0
            && self.m > 0
            && self.k > 0
            && self.stride > 0
            && self.in_h >= self.k
            && self.in_w >= self.k
    }
}

/// The tiling `(T_M, T_R, T_C)` of Fig. 4: the three innermost loops are
/// fully unrolled in hardware, so the accelerator instantiates
/// `T_M · T_R · T_C` MACs, of which every `T_R·T_C` share one weight —
/// exactly the sharing pattern of the BISC-MVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Output-feature-map tile `T_M`.
    pub t_m: usize,
    /// Output-row tile `T_R`.
    pub t_r: usize,
    /// Output-column tile `T_C`.
    pub t_c: usize,
}

impl Tiling {
    /// Number of BISC-MVM lanes: `p = T_R·T_C`.
    pub fn lanes(&self) -> usize {
        self.t_r * self.t_c
    }

    /// Total MAC units: `T_M·T_R·T_C`.
    pub fn macs(&self) -> usize {
        self.t_m * self.lanes()
    }

    /// Number of tiles needed to cover a layer (ceil divisions over M, R,
    /// C).
    pub fn tile_count(&self, g: &ConvGeometry) -> u64 {
        let tm = g.m.div_ceil(self.t_m) as u64;
        let tr = g.r().div_ceil(self.t_r) as u64;
        let tc = g.c().div_ceil(self.t_c) as u64;
        tm * tr * tc
    }
}

impl Default for Tiling {
    /// The paper's 256-MAC configuration with `T_M = 16`, `T_R·T_C = 16`.
    fn default() -> Self {
        Tiling { t_m: 16, t_r: 4, t_c: 4 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        // The MNIST-like conv1: 1×28×28 → 8×24×24, K = 5.
        let g = ConvGeometry { z: 1, in_h: 28, in_w: 28, m: 8, k: 5, stride: 1 };
        assert!(g.is_valid());
        assert_eq!((g.r(), g.c()), (24, 24));
        assert_eq!(g.depth(), 25);
        assert_eq!(g.macs(), 8 * 24 * 24 * 25);
    }

    #[test]
    fn strided_geometry() {
        let g = ConvGeometry { z: 3, in_h: 11, in_w: 11, m: 4, k: 3, stride: 2 };
        assert_eq!((g.r(), g.c()), (5, 5));
    }

    #[test]
    fn invalid_geometries() {
        let g = ConvGeometry { z: 1, in_h: 2, in_w: 8, m: 1, k: 3, stride: 1 };
        assert!(!g.is_valid());
        let g = ConvGeometry { z: 0, in_h: 8, in_w: 8, m: 1, k: 3, stride: 1 };
        assert!(!g.is_valid());
    }

    #[test]
    fn tiling_counts() {
        let t = Tiling::default();
        assert_eq!(t.lanes(), 16);
        assert_eq!(t.macs(), 256);
        let g = ConvGeometry { z: 1, in_h: 28, in_w: 28, m: 8, k: 5, stride: 1 };
        // M: ceil(8/16)=1, R: ceil(24/4)=6, C: 6.
        assert_eq!(t.tile_count(&g), 36);
    }
}
