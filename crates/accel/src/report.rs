//! Per-layer latency/energy accounting: combines the tile engine's
//! measured cycle counts with the `sc-hwmodel` array costs.

use crate::engine::{AccelArithmetic, LayerRun};
use crate::layer::{ConvGeometry, Tiling};
use sc_core::Precision;
use sc_hwmodel::{MacArray, MacDesign};

/// Latency/energy summary of one layer on one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReport {
    /// Measured cycles (from the tile engine).
    pub cycles: u64,
    /// Wall time at 1 GHz (µs).
    pub time_us: f64,
    /// Compute-array energy (µJ): array power × time.
    pub energy_uj: f64,
    /// Effective GOPS of the layer on this configuration.
    pub gops: f64,
    /// MACs in the layer.
    pub macs: u64,
}

/// Maps the accelerator arithmetic to the corresponding cost-model design.
pub fn design_of(arithmetic: AccelArithmetic) -> MacDesign {
    match arithmetic {
        AccelArithmetic::ProposedSerial => MacDesign::ProposedSerial,
        AccelArithmetic::ProposedParallel(b) => MacDesign::ProposedParallel(b),
        AccelArithmetic::Fixed => MacDesign::FixedPoint,
    }
}

/// Builds the report for a layer run.
pub fn report(
    g: &ConvGeometry,
    tiling: &Tiling,
    n: Precision,
    arithmetic: AccelArithmetic,
    run: &LayerRun,
) -> LayerReport {
    let macs = g.macs();
    // An empty run (no cycles) carries no time, energy, or throughput;
    // guard all derived quantities the same way so none goes infinite.
    if run.cycles == 0 {
        return LayerReport { cycles: 0, time_us: 0.0, energy_uj: 0.0, gops: 0.0, macs };
    }
    let array = MacArray::new(design_of(arithmetic), n, tiling.macs());
    let power_mw = array.power_mw();
    let time_us = run.cycles as f64 / 1e3; // 1 GHz → 1 cycle = 1 ns
    let energy_uj = power_mw * 1e-3 * time_us;
    let gops = 2.0 * macs as f64 / run.cycles as f64;
    LayerReport { cycles: run.cycles, time_us, energy_uj, gops, macs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TileEngine;

    #[test]
    fn proposed_layer_beats_fixed_energy_with_small_weights() {
        let g = ConvGeometry { z: 2, in_h: 9, in_w: 9, m: 4, k: 3, stride: 1 };
        let n = Precision::new(8).unwrap();
        let tiling = Tiling { t_m: 4, t_r: 4, t_c: 4 };
        let input: Vec<i32> = (0..g.z * 81).map(|i| ((i as i32 * 29) % 200) - 100).collect();
        // Small weights: |w| ≤ 3 → avg latency ≈ 1.5 cycles/MAC, inside
        // the regime where the serial design's ~3x power advantage wins.
        let weights: Vec<i32> = (0..g.m * g.depth()).map(|i| ((i as i32 * 5) % 7) - 3).collect();

        let prop_engine = TileEngine::new(n, tiling, AccelArithmetic::ProposedSerial, 8);
        let prop_run = prop_engine.run_layer(&g, &input, &weights).unwrap();
        let prop = report(&g, &tiling, n, AccelArithmetic::ProposedSerial, &prop_run);

        let fix_engine = TileEngine::new(n, tiling, AccelArithmetic::Fixed, 8);
        let fix_run = fix_engine.run_layer(&g, &input, &weights).unwrap();
        let fix = report(&g, &tiling, n, AccelArithmetic::Fixed, &fix_run);

        assert!(prop.energy_uj < fix.energy_uj, "{} vs {}", prop.energy_uj, fix.energy_uj);
        assert_eq!(prop.macs, fix.macs);
        assert!(prop.gops > 0.0 && fix.gops > 0.0);
    }

    #[test]
    fn report_scales_linearly_with_cycles() {
        let g = ConvGeometry { z: 1, in_h: 5, in_w: 5, m: 1, k: 3, stride: 1 };
        let tiling = Tiling { t_m: 1, t_r: 3, t_c: 3 };
        let n = Precision::new(6).unwrap();
        let run_a = LayerRun {
            outputs: vec![],
            cycles: 100,
            traffic: Default::default(),
            degraded_tiles: vec![],
            tiles: vec![],
        };
        let run_b = LayerRun { cycles: 200, ..run_a.clone() };
        let a = report(&g, &tiling, n, AccelArithmetic::Fixed, &run_a);
        let b = report(&g, &tiling, n, AccelArithmetic::Fixed, &run_b);
        assert!((b.energy_uj / a.energy_uj - 2.0).abs() < 1e-9);
        assert!((a.gops / b.gops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycle_run_reports_all_zero_finite_fields() {
        let g = ConvGeometry { z: 1, in_h: 5, in_w: 5, m: 1, k: 3, stride: 1 };
        let tiling = Tiling { t_m: 1, t_r: 3, t_c: 3 };
        let n = Precision::new(6).unwrap();
        let run = LayerRun {
            outputs: vec![],
            cycles: 0,
            traffic: Default::default(),
            degraded_tiles: vec![],
            tiles: vec![],
        };
        let rep = report(&g, &tiling, n, AccelArithmetic::ProposedSerial, &run);
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.time_us, 0.0);
        assert_eq!(rep.energy_uj, 0.0);
        assert_eq!(rep.gops, 0.0);
        assert_eq!(rep.macs, g.macs());
        assert!(rep.time_us.is_finite() && rep.energy_uj.is_finite() && rep.gops.is_finite());
    }
}
