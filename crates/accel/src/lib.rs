//! # sc-accel — the tiled SC-CNN accelerator (paper Sec. 3.2–3.3)
//!
//! The paper applies its BISC-MVM inside a conventional tiled CNN
//! accelerator (same top level as Rahman et al., DATE'16): convolution is
//! a 6-deep loop nest, tiled along output feature maps (`T_M`), output
//! rows (`T_R`) and output columns (`T_C`) — Fig. 4 — with the three
//! innermost loops fully unrolled in hardware. The BISC-MVM is configured
//! with `p = T_R·T_C` lanes and accumulates `d = K²·Z` terms per output
//! tile; its latency is the data-dependent `t = Σ |2^(N-1)·W|`.
//!
//! This crate executes that exact loop nest over real layer data:
//!
//! * [`layer`] — convolution layer geometry and tiling configuration;
//! * [`engine`] — the tile scheduler driving one [`sc_core::mvm::BiscMvm`]
//!   per `T_M` slot, producing both the **numerical outputs** (bit-exact
//!   with the behavioural SC-MAC) and the **cycle count** of the whole
//!   layer;
//! * [`memory`] — the on-chip buffer model (input/weight/output buffer
//!   sizing and off-chip traffic counting), which the paper keeps
//!   identical across binary and SC designs to make comparisons fair,
//!   plus the parity-protected [`memory::ParitySram`] bank with
//!   scrub-on-read;
//! * [`report`] — per-layer latency/energy accounting combining the
//!   engine's cycle counts with the `sc-hwmodel` array costs.
//!
//! ## Fault injection
//!
//! With an `SC_FAULTS` plan armed (see the `sc-fault` crate) the engine
//! registers three sites: `accel.sram.input` / `accel.sram.weight`
//! (operand buffers staged through [`memory::ParitySram`]) and
//! `accel.tile.output` (tile write-back vectors, verified by bounded
//! recompute-and-compare and degraded to the truncated-stream
//! progressive-precision mode — see [`engine::FaultPolicy`]). Disarmed
//! sites leave every datapath bitwise identical to the fault-free
//! build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod layer;
pub mod memory;
pub mod report;

pub use engine::{AccelArithmetic, FaultPolicy, TileEngine};
pub use layer::{ConvGeometry, Tiling};
pub use memory::ParitySram;
