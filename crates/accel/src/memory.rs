//! On-chip buffer model and off-chip traffic accounting.
//!
//! The paper stresses that BISC keeps *memory* in binary: "the on-chip
//! memory sizes for input/output/weight buffers are exactly the same" as
//! the binary accelerator, which is what makes its comparison fair — and
//! what a stochastic-storage design could never achieve (a `2^N`-bit SN
//! occupies `2^N/N` times the space of the equivalent BN).

use crate::layer::{ConvGeometry, Tiling};
use sc_core::Error;
use sc_fault::{FaultKind, FaultSite};

/// Word traffic between the buffers and off-chip memory for one layer.
/// All words are `N`-bit binary numbers (BISC!).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Input feature-map words loaded.
    pub input_words: u64,
    /// Weight words loaded.
    pub weight_words: u64,
    /// Output feature-map words stored.
    pub output_words: u64,
}

impl Traffic {
    /// Total words moved.
    pub fn total_words(&self) -> u64 {
        self.input_words + self.weight_words + self.output_words
    }

    /// Total bits moved at an `N`-bit word size.
    pub fn total_bits(&self, n_bits: u32) -> u64 {
        self.total_words() * n_bits as u64
    }

    /// How many bits the same transfers would take if intermediate data
    /// were stored as stochastic bitstreams (`2^N` bits per number) — the
    /// exponential storage overhead BISC avoids (paper Sec. 1).
    pub fn total_bits_if_stochastic(&self, n_bits: u32) -> u64 {
        self.total_words() * (1u64 << n_bits)
    }
}

/// On-chip buffer sizing for a layer/tiling pair, identical across binary
/// and SC designs (paper Sec. 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPlan {
    /// Input-buffer capacity in words (one tile's input patch, all `Z`).
    pub input_words: usize,
    /// Weight-buffer capacity in words (`T_M` filters' worth per
    /// (z,i,j)-stream: `T_M·K²·Z`).
    pub weight_words: usize,
    /// Output-buffer capacity in words (one tile of outputs).
    pub output_words: usize,
}

impl BufferPlan {
    /// Computes the plan for a geometry and tiling.
    pub fn for_layer(g: &ConvGeometry, t: &Tiling) -> Self {
        let patch_h = (t.t_r - 1) * g.stride + g.k;
        let patch_w = (t.t_c - 1) * g.stride + g.k;
        BufferPlan {
            input_words: g.z * patch_h * patch_w,
            weight_words: t.t_m * g.depth(),
            output_words: t.t_m * t.t_r * t.t_c,
        }
    }

    /// Total buffer bits at an `N`-bit word size.
    pub fn total_bits(&self, n_bits: u32) -> u64 {
        (self.input_words + self.weight_words + self.output_words) as u64 * n_bits as u64
    }
}

/// A parity-protected on-chip SRAM bank with scrub-on-read.
///
/// Each word carries one even-parity bit computed at write time. Faults
/// (site `accel.sram.<bank>`, armed via `SC_FAULTS`) strike the stored
/// array on read:
///
/// * `flip` — upsets one bit, or an adjacent **pair** when the draw's
///   burst bit is set (pair upsets defeat single parity and surface as
///   `fault.masked`);
/// * `stuck0` / `stuck1` — force one cell low/high;
/// * `starve` — the word line misses its timing window and the sense
///   amps read all zeros (the stored word is untouched).
///
/// [`read`](Self::read) models a scrubbing controller: a parity
/// mismatch is counted as `fault.detected`, the word is rewritten from
/// the write-time image, and the repair is counted as
/// `fault.corrected`. [`read_checked`](Self::read_checked) is the
/// non-scrubbing port: it surfaces the mismatch as
/// [`Error::MemoryParity`] for callers that must fail fast.
///
/// With the site disarmed every read returns the written word and
/// records nothing — the bank is bitwise transparent.
#[derive(Debug, Clone)]
pub struct ParitySram {
    bank: String,
    width: u32,
    words: Vec<u64>,
    golden: Vec<u64>,
    parity: Vec<bool>,
    site: Option<FaultSite>,
    key: u64,
    reads: u64,
}

impl ParitySram {
    /// Creates a bank of `len` zeroed words of `width` bits, resolving
    /// the `accel.sram.<bank>` fault site against the active plan.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=63`.
    pub fn new(bank: &str, width: u32, len: usize) -> Self {
        assert!((1..=63).contains(&width), "sram word width out of range");
        ParitySram {
            bank: bank.to_string(),
            width,
            words: vec![0; len],
            golden: vec![0; len],
            parity: vec![false; len],
            site: sc_fault::site(&format!("accel.sram.{bank}")),
            key: 0,
            reads: 0,
        }
    }

    /// Sets the fault-draw key decorrelating this bank from siblings.
    pub fn set_fault_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Number of words in the bank.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the bank has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether the bank's fault site is armed.
    pub fn armed(&self) -> bool {
        self.site.is_some()
    }

    fn parity_of(word: u64) -> bool {
        word.count_ones() % 2 == 1
    }

    /// Writes a word and its parity bit.
    ///
    /// # Panics
    ///
    /// Panics if `word` does not fit in the bank's width.
    pub fn write(&mut self, addr: usize, word: u64) {
        assert!(word < 1u64 << self.width, "word wider than the bank");
        self.words[addr] = word;
        self.golden[addr] = word;
        self.parity[addr] = Self::parity_of(word);
    }

    /// One read's worth of fault exposure: possibly corrupts the stored
    /// word, then returns what the sense amps observe.
    fn observe(&mut self, addr: usize) -> u64 {
        let index = self.reads;
        self.reads += 1;
        if let Some(site) = &self.site {
            let instance = self.key ^ (addr as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            if let Some(entropy) = site.transient(instance, index) {
                let word = self.words[addr];
                let bit = (entropy >> 8) as u32 % self.width;
                self.words[addr] = match site.kind() {
                    FaultKind::Transient => {
                        let flipped = word ^ (1u64 << bit);
                        if entropy & (1 << 40) != 0 {
                            // Burst upset: the adjacent cell flips too.
                            flipped ^ (1u64 << ((bit + 1) % self.width))
                        } else {
                            flipped
                        }
                    }
                    FaultKind::StuckAt0 => word & !(1u64 << bit),
                    FaultKind::StuckAt1 => word | (1u64 << bit),
                    FaultKind::Starve => return 0,
                };
            }
        }
        self.words[addr]
    }

    /// Reads a word through the scrubbing controller: parity mismatches
    /// are detected, repaired from the write-time image, and the clean
    /// word returned. Parity-clean corruption (even-bit upsets) passes
    /// through and is recorded as masked.
    pub fn read(&mut self, addr: usize) -> u64 {
        let observed = self.observe(addr);
        if Self::parity_of(observed) != self.parity[addr] {
            sc_fault::record_detected(1);
            self.words[addr] = self.golden[addr];
            sc_fault::record_corrected(1);
            return self.golden[addr];
        }
        if observed != self.golden[addr] {
            sc_fault::record_masked(1);
        }
        observed
    }

    /// Reads a word through the fail-fast port (no scrub).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MemoryParity`] on a parity mismatch; the
    /// corrupted word stays in the array.
    pub fn read_checked(&mut self, addr: usize) -> Result<u64, Error> {
        let observed = self.observe(addr);
        if Self::parity_of(observed) != self.parity[addr] {
            sc_fault::record_detected(1);
            return Err(Error::MemoryParity { bank: self.bank.clone(), addr });
        }
        if observed != self.golden[addr] {
            sc_fault::record_masked(1);
        }
        Ok(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_fault::FaultPlan;

    #[test]
    fn traffic_totals() {
        let t = Traffic { input_words: 100, weight_words: 50, output_words: 25 };
        assert_eq!(t.total_words(), 175);
        assert_eq!(t.total_bits(8), 1400);
        // The stochastic-storage blow-up: 2^8 bits per word.
        assert_eq!(t.total_bits_if_stochastic(8), 175 * 256);
        assert!(t.total_bits_if_stochastic(8) / t.total_bits(8) == 32); // 2^N / N
    }

    #[test]
    fn buffer_plan_for_default_tiling() {
        let g = ConvGeometry { z: 8, in_h: 12, in_w: 12, m: 16, k: 5, stride: 1 };
        let t = Tiling::default(); // 16 × 4 × 4
        let plan = BufferPlan::for_layer(&g, &t);
        assert_eq!(plan.input_words, 8 * 8 * 8); // (4-1)·1+5 = 8
        assert_eq!(plan.weight_words, 16 * 25 * 8);
        assert_eq!(plan.output_words, 16 * 16);
        assert!(plan.total_bits(9) > 0);
    }

    #[test]
    fn disarmed_sram_is_transparent() {
        let _g = sc_fault::scoped(FaultPlan::parse("").unwrap());
        let mut sram = ParitySram::new("input", 9, 16);
        assert!(!sram.armed());
        for a in 0..16 {
            sram.write(a, (a as u64 * 31) & 0x1FF);
        }
        for a in 0..16 {
            let want = (a as u64 * 31) & 0x1FF;
            assert_eq!(sram.read(a), want);
            assert_eq!(sram.read_checked(a).unwrap(), want);
        }
    }

    #[test]
    fn single_bit_flips_are_detected_and_scrubbed() {
        // Rate 1.0 pure single-bit flips would always trip parity; the
        // burst bit makes some reads masked instead, so just require
        // that every read returns either the clean word (scrubbed or
        // untouched) or a parity-clean two-bit corruption.
        let _g = sc_fault::scoped(FaultPlan::parse("accel.sram.weight:flip@1.0;seed=3").unwrap());
        let words = 64;
        let mut sram = ParitySram::new("weight", 9, words);
        for a in 0..words {
            sram.write(a, 0x155);
        }
        let (mut scrubbed, mut masked) = (0, 0);
        for a in 0..words {
            let got = sram.read(a);
            if got == 0x155 {
                scrubbed += 1;
            } else {
                assert_eq!((got ^ 0x155).count_ones(), 2, "masked reads are pair upsets");
                masked += 1;
            }
        }
        assert!(scrubbed > 0, "some single-bit upsets must be caught by parity");
        assert!(masked > 0, "some burst upsets must defeat single parity");
    }

    #[test]
    fn checked_port_surfaces_parity_errors() {
        let _g = sc_fault::scoped(FaultPlan::parse("accel.sram.input:stuck1@1.0;seed=1").unwrap());
        let mut sram = ParitySram::new("input", 9, 4);
        // All-zero words: any stuck-at-1 cell flips parity.
        let mut hits = 0;
        for a in 0..4 {
            match sram.read_checked(a) {
                Err(Error::MemoryParity { bank, addr }) => {
                    assert_eq!(bank, "input");
                    assert_eq!(addr, a);
                    hits += 1;
                }
                Ok(w) => assert_eq!(w, 0),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(hits, 4);
    }

    #[test]
    fn starved_reads_observe_zero_and_scrub() {
        let _g = sc_fault::scoped(FaultPlan::parse("accel.sram.input:starve@1.0;seed=2").unwrap());
        let mut sram = ParitySram::new("input", 9, 2);
        sram.write(0, 0b1); // odd parity: the all-zero observation trips it
        sram.write(1, 0b11); // even parity: the zero read is masked
        assert_eq!(sram.read(0), 0b1, "detected and scrubbed");
        assert_eq!(sram.read(1), 0, "even-weight words mask the starved read");
    }
}
