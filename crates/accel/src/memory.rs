//! On-chip buffer model and off-chip traffic accounting.
//!
//! The paper stresses that BISC keeps *memory* in binary: "the on-chip
//! memory sizes for input/output/weight buffers are exactly the same" as
//! the binary accelerator, which is what makes its comparison fair — and
//! what a stochastic-storage design could never achieve (a `2^N`-bit SN
//! occupies `2^N/N` times the space of the equivalent BN).

use crate::layer::{ConvGeometry, Tiling};

/// Word traffic between the buffers and off-chip memory for one layer.
/// All words are `N`-bit binary numbers (BISC!).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Input feature-map words loaded.
    pub input_words: u64,
    /// Weight words loaded.
    pub weight_words: u64,
    /// Output feature-map words stored.
    pub output_words: u64,
}

impl Traffic {
    /// Total words moved.
    pub fn total_words(&self) -> u64 {
        self.input_words + self.weight_words + self.output_words
    }

    /// Total bits moved at an `N`-bit word size.
    pub fn total_bits(&self, n_bits: u32) -> u64 {
        self.total_words() * n_bits as u64
    }

    /// How many bits the same transfers would take if intermediate data
    /// were stored as stochastic bitstreams (`2^N` bits per number) — the
    /// exponential storage overhead BISC avoids (paper Sec. 1).
    pub fn total_bits_if_stochastic(&self, n_bits: u32) -> u64 {
        self.total_words() * (1u64 << n_bits)
    }
}

/// On-chip buffer sizing for a layer/tiling pair, identical across binary
/// and SC designs (paper Sec. 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPlan {
    /// Input-buffer capacity in words (one tile's input patch, all `Z`).
    pub input_words: usize,
    /// Weight-buffer capacity in words (`T_M` filters' worth per
    /// (z,i,j)-stream: `T_M·K²·Z`).
    pub weight_words: usize,
    /// Output-buffer capacity in words (one tile of outputs).
    pub output_words: usize,
}

impl BufferPlan {
    /// Computes the plan for a geometry and tiling.
    pub fn for_layer(g: &ConvGeometry, t: &Tiling) -> Self {
        let patch_h = (t.t_r - 1) * g.stride + g.k;
        let patch_w = (t.t_c - 1) * g.stride + g.k;
        BufferPlan {
            input_words: g.z * patch_h * patch_w,
            weight_words: t.t_m * g.depth(),
            output_words: t.t_m * t.t_r * t.t_c,
        }
    }

    /// Total buffer bits at an `N`-bit word size.
    pub fn total_bits(&self, n_bits: u32) -> u64 {
        (self.input_words + self.weight_words + self.output_words) as u64 * n_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals() {
        let t = Traffic { input_words: 100, weight_words: 50, output_words: 25 };
        assert_eq!(t.total_words(), 175);
        assert_eq!(t.total_bits(8), 1400);
        // The stochastic-storage blow-up: 2^8 bits per word.
        assert_eq!(t.total_bits_if_stochastic(8), 175 * 256);
        assert!(t.total_bits_if_stochastic(8) / t.total_bits(8) == 32); // 2^N / N
    }

    #[test]
    fn buffer_plan_for_default_tiling() {
        let g = ConvGeometry { z: 8, in_h: 12, in_w: 12, m: 16, k: 5, stride: 1 };
        let t = Tiling::default(); // 16 × 4 × 4
        let plan = BufferPlan::for_layer(&g, &t);
        assert_eq!(plan.input_words, 8 * 8 * 8); // (4-1)·1+5 = 8
        assert_eq!(plan.weight_words, 16 * 25 * 8);
        assert_eq!(plan.output_words, 16 * 16);
        assert!(plan.total_bits(9) > 0);
    }
}
