//! Cross-crate integration: datasets → neural training → quantized/SC
//! inference → hardware model, i.e. the full experimental pipeline of the
//! paper at miniature scale.

use scnn::core::conventional::ConvScMethod;
use scnn::core::Precision;
use scnn::hwmodel::array::quantize_weights;
use scnn::hwmodel::{MacArray, MacDesign};
use scnn::neural::arith::QuantArith;
use scnn::neural::layers::ConvMode;
use scnn::neural::train::{evaluate, sample_tensor, train, TrainConfig};

#[test]
fn miniature_fig6_pipeline_orders_methods_correctly() {
    let train_set = scnn::datasets::mnist_like(400, 11);
    let test_set = scnn::datasets::mnist_like(150, 12);
    let mut net = scnn::neural::zoo::mnist_net(11);
    let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
    train(&mut net, &train_set, &cfg);
    let calib: Vec<_> = (0..8).map(|i| sample_tensor(&train_set, i).0).collect();
    net.calibrate_io_scales(&calib);

    let float_acc = evaluate(&mut net, &test_set);
    assert!(float_acc > 0.6, "float reference too weak: {float_acc}");

    let n = Precision::new(9).unwrap();
    let acc_of = |arith| {
        let mut q = net.clone();
        q.set_conv_mode(&ConvMode::Quantized { arith, extra_bits: 2 });
        evaluate(&mut q, &test_set)
    };
    let fixed = acc_of(QuantArith::fixed(n));
    let proposed = acc_of(QuantArith::proposed_sc(n));
    let conv = acc_of(QuantArith::conventional_sc(n, ConvScMethod::Lfsr).unwrap());

    // The paper's accuracy ordering at high precision: fixed ≈ proposed
    // ≈ float, conventional SC far behind.
    assert!(fixed > float_acc - 0.08, "fixed {fixed} vs float {float_acc}");
    assert!(proposed > float_acc - 0.12, "proposed {proposed} vs float {float_acc}");
    assert!(conv < proposed - 0.2, "conventional {conv} vs proposed {proposed}");
}

#[test]
fn trained_weights_drive_the_latency_advantage() {
    let train_set = scnn::datasets::mnist_like(200, 3);
    let mut net = scnn::neural::zoo::mnist_net(3);
    let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
    train(&mut net, &train_set, &cfg);

    let n = Precision::new(8).unwrap();
    let codes = quantize_weights(&net.conv_weights(), n);
    let ours = MacArray::new(MacDesign::ProposedSerial, n, 256);
    let conv = MacArray::new(MacDesign::ConventionalSc(ConvScMethod::Lfsr), n, 256);

    let ours_cycles = ours.avg_mac_cycles(&codes);
    let conv_cycles = conv.avg_mac_cycles(&codes);
    // Bell-shaped weights make the data-dependent latency far below 2^N.
    assert!(ours_cycles < conv_cycles / 4.0, "{ours_cycles} vs {conv_cycles}");

    // And the energy advantage follows (Fig. 7's headline).
    let m_ours = ours.metrics(&codes);
    let m_conv = conv.metrics(&codes);
    assert!(m_ours.energy_per_mac_pj * 10.0 < m_conv.energy_per_mac_pj);
}

#[test]
fn dataset_determinism_end_to_end() {
    // The whole pipeline is seeded: same seeds, same accuracy.
    let run = || {
        let train_set = scnn::datasets::mnist_like(120, 5);
        let test_set = scnn::datasets::mnist_like(60, 6);
        let mut net = scnn::neural::zoo::mnist_net(5);
        let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
        train(&mut net, &train_set, &cfg);
        evaluate(&mut net, &test_set)
    };
    assert_eq!(run(), run());
}
