//! Cross-crate integration: the tiled accelerator (`sc-accel`) and the
//! neural framework's quantized convolution (`sc-neural`) implement the
//! same arithmetic — their outputs must agree exactly on a real trained
//! layer.

use scnn::accel::engine::{AccelArithmetic, TileEngine};
use scnn::accel::layer::{ConvGeometry, Tiling};
use scnn::core::Precision;
use scnn::neural::arith::QuantArith;
use scnn::neural::layers::{Conv2d, ConvMode};
use scnn::neural::tensor::Tensor;
use scnn::neural::zoo::InitRng;

#[test]
fn accelerator_matches_neural_quantized_conv() {
    let n = Precision::new(8).unwrap();
    let g = ConvGeometry { z: 2, in_h: 10, in_w: 10, m: 4, k: 5, stride: 1 };

    // A conv layer with realistic weights (unpadded, like the MNIST-like
    // net's layers), bias zeroed so the MAC-array outputs compare
    // directly.
    let mut conv = Conv2d::new(g.z, g.m, g.k, 1, 0, &mut InitRng::new(9));
    conv.set_bias(vec![0.0; g.m]);
    conv.set_mode(ConvMode::Quantized { arith: QuantArith::proposed_sc(n), extra_bits: 2 });

    let input = Tensor::new(
        (0..g.z * g.in_h * g.in_w).map(|i| ((i % 53) as f32 / 53.0) - 0.4).collect(),
        &[g.z, g.in_h, g.in_w],
    );
    let neural_out = conv.forward(&input);

    // Same data through the accelerator: quantize exactly as the conv
    // layer does, then compare counter-for-counter.
    let xq: Vec<i32> = input.data().iter().map(|&v| scnn::fixed::quantize(v, n)).collect();
    let wq: Vec<i32> = conv.weights().iter().map(|&v| scnn::fixed::quantize(v, n)).collect();
    let engine =
        TileEngine::new(n, Tiling { t_m: 3, t_r: 2, t_c: 4 }, AccelArithmetic::ProposedSerial, 2);
    let run = engine.run_layer(&g, &xq, &wq).unwrap();

    let half = n.half_scale() as f32;
    assert_eq!(run.outputs.len(), neural_out.len());
    for (i, (&counter, &y)) in run.outputs.iter().zip(neural_out.data()).enumerate() {
        let accel_value = counter as f32 / half;
        assert!((accel_value - y).abs() < 1e-6, "output {i}: accel {accel_value} vs neural {y}");
    }

    // And the data-dependent latency is far below conventional SC's
    // d·2^N per tile.
    let conv_sc_cycles = g.macs() / (3 * 2 * 4).min(g.m * g.r() * g.c()) as u64 * 256;
    assert!(run.cycles < conv_sc_cycles / 2, "{} vs {}", run.cycles, conv_sc_cycles);
}

#[test]
fn accelerator_matches_neural_fixed_conv() {
    let n = Precision::new(7).unwrap();
    let g = ConvGeometry { z: 1, in_h: 8, in_w: 8, m: 3, k: 3, stride: 1 };
    let mut conv = Conv2d::new(g.z, g.m, g.k, 1, 0, &mut InitRng::new(4));
    conv.set_bias(vec![0.0; g.m]);
    conv.set_mode(ConvMode::Quantized { arith: QuantArith::fixed(n), extra_bits: 2 });

    let input = Tensor::new((0..64).map(|i| ((i % 31) as f32 / 31.0) - 0.5).collect(), &[1, 8, 8]);
    let neural_out = conv.forward(&input);

    let xq: Vec<i32> = input.data().iter().map(|&v| scnn::fixed::quantize(v, n)).collect();
    let wq: Vec<i32> = conv.weights().iter().map(|&v| scnn::fixed::quantize(v, n)).collect();
    let engine = TileEngine::new(n, Tiling::default(), AccelArithmetic::Fixed, 2);
    let run = engine.run_layer(&g, &xq, &wq).unwrap();

    let half = n.half_scale() as f32;
    for (&counter, &y) in run.outputs.iter().zip(neural_out.data()) {
        assert!((counter as f32 / half - y).abs() < 1e-6);
    }
}
