//! Cross-crate integration: the behavioural SC-MAC (sc-core), the RTL
//! datapath (sc-rtlsim), the fixed-point baseline (sc-fixed), and the
//! neural product tables (sc-neural) must all agree with each other.

use scnn::core::conventional::{ConvScMethod, SignedProductLut};
use scnn::core::mac::{BitParallelScMac, SignedScMac};
use scnn::core::Precision;
use scnn::fixed::FixedMul;
use scnn::neural::arith::QuantArith;
use scnn::rtlsim::mac::ProposedMacRtl;
use scnn::rtlsim::parallel::BitParallelMacRtl;

#[test]
fn proposed_mac_four_way_agreement() {
    // Closed form == bit-serial sim == bit-parallel == RTL, exhaustively
    // at N = 6.
    let n = Precision::new(6).unwrap();
    let mac = SignedScMac::new(n);
    let par = BitParallelScMac::new(n, 8).unwrap();
    for w in -32..32 {
        for x in -32..32 {
            let closed = mac.multiply(w, x).unwrap();
            let serial = mac.multiply_serial(w, x).unwrap();
            let parallel = par.multiply_signed(w, x).unwrap();
            let mut rtl = ProposedMacRtl::new(n, 8);
            rtl.load(w, x).unwrap();
            rtl.run_to_done();
            let mut rtl_par = BitParallelMacRtl::new(n, 8, 8).unwrap();
            rtl_par.load(w, x).unwrap();
            rtl_par.run_to_done();

            assert_eq!(closed.value, serial.value, "w={w} x={x}");
            assert_eq!(closed.value, parallel.value, "w={w} x={x}");
            assert_eq!(closed.value, rtl.value(), "w={w} x={x}");
            assert_eq!(closed.value, rtl_par.value(), "w={w} x={x}");
        }
    }
}

#[test]
fn neural_product_tables_match_reference_implementations() {
    let n = Precision::new(6).unwrap();
    let fixed_table = QuantArith::fixed(n);
    let proposed_table = QuantArith::proposed_sc(n);
    let fixed = FixedMul::new(n);
    let mac = SignedScMac::new(n);
    for w in -32..32 {
        for x in -32..32 {
            assert_eq!(
                fixed_table.product(w, x) as i64,
                fixed.multiply(w, x).unwrap(),
                "fixed w={w} x={x}"
            );
            assert_eq!(
                proposed_table.product(w, x) as i64,
                mac.multiply(w, x).unwrap().value,
                "proposed w={w} x={x}"
            );
        }
    }
}

#[test]
fn conventional_sc_table_phase_zero_matches_stream_lut() {
    let n = Precision::new(5).unwrap();
    let table = QuantArith::conventional_sc(n, ConvScMethod::Lfsr).unwrap();
    let lut = SignedProductLut::build(n, ConvScMethod::Lfsr).unwrap();
    for w in -16..16 {
        for x in -16..16 {
            assert_eq!(table.product_at(0, w, x), lut.product_scaled(x, w), "w={w} x={x}");
        }
    }
    // Different phases give different (decorrelated) error patterns.
    let differs = (-16..16)
        .any(|w| (-16..16).any(|x| table.product_at(0, w, x) != table.product_at(1, w, x)));
    assert!(differs, "phase tables must not be identical");
}

#[test]
fn error_ordering_proposed_beats_fixed_truncation_variance_budget() {
    // At equal N, the proposed SC product error is bounded by N/2 LSBs
    // while fixed-point rounding is bounded by 0.5 LSB — both far below
    // conventional SC's stream noise. Verify the per-product max errors.
    let n = Precision::new(8).unwrap();
    let mac = SignedScMac::new(n);
    let fixed = FixedMul::new(n);
    let lut = SignedProductLut::build(n, ConvScMethod::Lfsr).unwrap();
    let mut max_prop = 0.0f64;
    let mut max_fix = 0.0f64;
    let mut max_conv = 0.0f64;
    for w in (-128..128).step_by(3) {
        for x in (-128..128).step_by(3) {
            let exact = mac.exact(w, x);
            max_prop = max_prop.max((mac.multiply(w, x).unwrap().value as f64 - exact).abs());
            max_fix = max_fix.max((fixed.multiply(w, x).unwrap() as f64 - exact).abs());
            max_conv = max_conv.max((lut.product_scaled(x, w) as f64 - exact).abs());
        }
    }
    assert!(max_fix <= 0.5 + 1e-9, "fixed max {max_fix}");
    assert!(max_prop <= 4.0, "proposed max {max_prop}");
    assert!(max_conv > max_prop, "conventional {max_conv} vs proposed {max_prop}");
}
