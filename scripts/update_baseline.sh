#!/usr/bin/env bash
# Refresh the committed perf baselines in results/baseline/.
#
# Runs the baselined benches clean (no SC_FAULTS) in --quick mode at
# SC_THREADS=4 — the same configuration scripts/ci.sh diffs against —
# then copies their manifests into results/baseline/. Commit the result
# together with the change that moved the numbers, so `sc_report` (and
# the ci.sh report gate) goes green again with an auditable diff.
#
# Usage: scripts/update_baseline.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=(serve_storm fault_sweep)

for bench in "${BENCHES[@]}"; do
    echo "==> $bench --quick (clean, SC_THREADS=4)"
    # Unset (not empty) SC_FAULTS: manifests record even an empty spec,
    # and the gate treats that as config drift against an unset run.
    env -u SC_FAULTS SC_THREADS=4 \
        cargo run --release -q -p sc-bench --bin "$bench" -- --quick >/dev/null
done

mkdir -p results/baseline
for bench in "${BENCHES[@]}"; do
    cp "results/$bench.manifest.json" results/baseline/
    echo "    baselined results/baseline/$bench.manifest.json"
    # Folded-stack cycle profile for the differential profiler, when
    # the bench emits one (sc_report diffs attribution shares, which
    # are deterministic even though --quick shrinks absolute cycles).
    if [[ -f "results/obs/$bench.folded" ]]; then
        cp "results/obs/$bench.folded" results/baseline/
        echo "    baselined results/baseline/$bench.folded"
    fi
done

echo "Done. Review the diff and commit results/baseline/ with your change."
