#!/usr/bin/env bash
# Local CI gate: run everything the hosted workflow runs.
# Usage: scripts/ci.sh [--no-clippy]
#
# The workspace has zero external dependencies, so this works fully
# offline. --no-clippy skips the lint step on toolchains without the
# clippy component.

set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
for arg in "$@"; do
    case "$arg" in
        --no-clippy) run_clippy=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [ "$run_clippy" -eq 1 ]; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy (-D warnings)"
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "==> clippy not installed, skipping (pass --no-clippy to silence)"
    fi
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (SC_THREADS=1)"
SC_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SC_THREADS=4)"
SC_THREADS=4 cargo test --workspace -q

echo "==> fault gate: workspace suite under a nonzero SC_FAULTS plan"
# Tests that depend on clean arithmetic install their own scoped plans
# (which override the env), so the suite must stay green with ambient
# faults armed; this catches any path that forgot to resolve its sites.
SC_FAULTS="rtlsim.mvm.lane:stuck0@0.001;seed=1" SC_THREADS=4 \
    cargo test --workspace -q

echo "==> fault gate: fault_sweep --quick"
# Self-asserting: zero-rate cells are bitwise fault-free, and the
# proposed SC degrades strictly more slowly than fixed-point binary at
# every rate >= 1e-3.
cargo run --release -q -p sc-bench --bin fault_sweep -- --quick

echo "==> fault gate: manifests record injection/detection/degradation"
python3 - <<'EOF'
import json
c = json.load(open("results/fault_sweep.manifest.json"))["metrics"]["counters"]
assert c.get("fault.injected", 0) > 0, "fault_sweep manifest missing fault.injected"
EOF
SC_FAULTS="accel.sram.input:flip@0.005;accel.tile.output:flip@0.02;seed=3" \
    cargo run --release -q -p sc-bench --bin accel_layers -- --quick >/dev/null
python3 - <<'EOF'
import json
m = json.load(open("results/accel_layers.manifest.json"))
c = m["metrics"]["counters"]
assert "sc_faults" in m["config"], "manifest must record the SC_FAULTS spec"
for k in ("fault.injected", "fault.detected", "fault.corrected"):
    assert c.get(k, 0) > 0, f"accel_layers manifest missing {k}"
EOF

echo "==> fault gate: zero-rate plan is bitwise identical to no plan"
# The determinism suite asserts unarmed == zero-rate fingerprints and
# faulted-run reproducibility at SC_THREADS in {1, 2, 7}; run it under
# both CI thread counts so the identity holds at 1 and 4 workers too.
SC_THREADS=1 cargo test -q -p sc-bench --test determinism \
    accel_layer_under_faults_identical_across_thread_counts
SC_THREADS=4 cargo test -q -p sc-bench --test determinism \
    accel_layer_under_faults_identical_across_thread_counts

echo "CI gate passed."
