#!/usr/bin/env bash
# Local CI gate: run everything the hosted workflow runs.
# Usage: scripts/ci.sh [--no-clippy]
#
# The workspace has zero external dependencies, so this works fully
# offline. --no-clippy skips the lint step on toolchains without the
# clippy component.

set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
for arg in "$@"; do
    case "$arg" in
        --no-clippy) run_clippy=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [ "$run_clippy" -eq 1 ]; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy (-D warnings)"
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "==> clippy not installed, skipping (pass --no-clippy to silence)"
    fi
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (SC_THREADS=1)"
SC_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SC_THREADS=4)"
SC_THREADS=4 cargo test --workspace -q

echo "CI gate passed."
