#!/usr/bin/env bash
# Local CI gate: run everything the hosted workflow runs.
# Usage: scripts/ci.sh [--no-clippy]
#
# The workspace has zero external dependencies, so this works fully
# offline. --no-clippy skips the lint step on toolchains without the
# clippy component.

set -euo pipefail
cd "$(dirname "$0")/.."

# Stamp for the manifest gate at the end: every manifest (re)emitted
# after this point must carry the current schema version. Committed
# manifests from before schema versioning are grandfathered until their
# bench next runs.
CI_STAMP="$(mktemp)"
export CI_STAMP
trap 'rm -f "$CI_STAMP"' EXIT

run_clippy=1
for arg in "$@"; do
    case "$arg" in
        --no-clippy) run_clippy=0 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [ "$run_clippy" -eq 1 ]; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy (-D warnings)"
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "==> clippy not installed, skipping (pass --no-clippy to silence)"
    fi
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (SC_THREADS=1)"
SC_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SC_THREADS=4)"
SC_THREADS=4 cargo test --workspace -q

echo "==> engine gate: golden cross-check under both execution engines"
# The bitplane popcount fast paths must stay bitwise identical to the
# cycle-accurate reference whichever engine SC_ENGINE selects, at both
# CI thread counts. The selection is latched once per process, so every
# combination gets a fresh test process.
for eng in cycle bitplane; do
    for t in 1 4; do
        echo "    SC_ENGINE=$eng SC_THREADS=$t"
        SC_ENGINE="$eng" SC_THREADS="$t" cargo test -q -p sc-rtlsim --test bitplane
        SC_ENGINE="$eng" SC_THREADS="$t" cargo test -q -p sc-accel --test engines
    done
done

echo "==> fault gate: workspace suite under a nonzero SC_FAULTS plan"
# Tests that depend on clean arithmetic install their own scoped plans
# (which override the env), so the suite must stay green with ambient
# faults armed; this catches any path that forgot to resolve its sites.
SC_FAULTS="rtlsim.mvm.lane:stuck0@0.001;seed=1" SC_THREADS=4 \
    cargo test --workspace -q

echo "==> fault gate: fault_sweep --quick"
# Self-asserting: zero-rate cells are bitwise fault-free, and the
# proposed SC degrades strictly more slowly than fixed-point binary at
# every rate >= 1e-3.
cargo run --release -q -p sc-bench --bin fault_sweep -- --quick

echo "==> fault gate: manifests record injection/detection/degradation"
python3 - <<'EOF'
import json
c = json.load(open("results/fault_sweep.manifest.json"))["metrics"]["counters"]
assert c.get("fault.injected", 0) > 0, "fault_sweep manifest missing fault.injected"
EOF
SC_FAULTS="accel.sram.input:flip@0.005;accel.tile.output:flip@0.02;seed=3" \
    cargo run --release -q -p sc-bench --bin accel_layers -- --quick >/dev/null
python3 - <<'EOF'
import json
m = json.load(open("results/accel_layers.manifest.json"))
c = m["metrics"]["counters"]
assert "sc_faults" in m["config"], "manifest must record the SC_FAULTS spec"
for k in ("fault.injected", "fault.detected", "fault.corrected"):
    assert c.get(k, 0) > 0, f"accel_layers manifest missing {k}"
EOF

echo "==> serve gate: serve_storm --quick, clean twice, bitwise-identical metrics"
# The serving layer is a discrete-event simulation on a virtual clock:
# a clean rerun must reproduce every serve.*, accel.*, and fault.*
# metric bit for bit (par.steals/par.utilization are scheduling noise
# by design and excluded). The bin itself asserts the resilience
# claims: bounded queue depth, protected-vs-naive spike goodput/p99,
# per-tier EDT error bounds, and the zero-rate fault identity.
SC_THREADS=4 cargo run --release -q -p sc-bench --bin serve_storm -- --quick >/dev/null
python3 - <<'EOF'
import json
m = json.load(open("results/serve_storm.manifest.json"))["metrics"]
m["counters"] = [kv for kv in m["counters"].items() if not kv[0].startswith("par.")]
m["gauges"] = [kv for kv in m["gauges"].items() if not kv[0].startswith("par.")]
json.dump(m, open("results/.serve_storm.metrics.run1.json", "w"), sort_keys=True)
EOF
SC_THREADS=4 cargo run --release -q -p sc-bench --bin serve_storm -- --quick >/dev/null
python3 - <<'EOF'
import json
m = json.load(open("results/serve_storm.manifest.json"))["metrics"]
m["counters"] = [kv for kv in m["counters"].items() if not kv[0].startswith("par.")]
m["gauges"] = [kv for kv in m["gauges"].items() if not kv[0].startswith("par.")]
first = json.load(open("results/.serve_storm.metrics.run1.json"))
second = json.loads(json.dumps(m, sort_keys=True))
assert first == second, "serve_storm clean rerun diverged: the serving layer is not deterministic"
c = dict(m["counters"])
for k in ("serve.completed", "serve.degraded", "serve.shed", "serve.retry", "serve.breaker.trip"):
    assert c.get(k, 0) > 0, f"serve_storm manifest missing {k}"
EOF
rm -f results/.serve_storm.metrics.run1.json

echo "==> serve gate: serve_storm --quick under ambient serve-backend faults"
SC_FAULTS="serve.backend:flip@0.05;seed=11" SC_THREADS=4 \
    cargo run --release -q -p sc-bench --bin serve_storm -- --quick >/dev/null
python3 - <<'EOF'
import json
m = json.load(open("results/serve_storm.manifest.json"))
assert "sc_faults" in m["config"], "manifest must record the SC_FAULTS spec"
c = m["metrics"]["counters"]
assert c.get("fault.injected.serve.backend", 0) > 0, "serve faults were not injected"
EOF

echo "==> manifest gate: every emitted manifest carries a supported schema version"
python3 - <<'EOF'
import glob, json, os
stamp = os.path.getmtime(os.environ["CI_STAMP"])
paths = sorted(p for p in glob.glob("results/*.manifest.json") if os.path.getmtime(p) >= stamp)
assert paths, "no manifests emitted this run; bench gates did not execute"
# v3 added `trace` and `attribution`; v4 added the `health` summary
# block; v5 added the health summary's `reseeds` counter (same
# top-level shape as v4). v2..v4 manifests from benches that have not
# been re-run since remain readable. Unknown top-level fields are an
# error only for v5 — that is the version this tree emits, so a stray
# field there means a writer/validator mismatch in the current code.
KNOWN_V3 = {
    "schema_version", "bench", "config", "seed", "quick", "args",
    "git_describe", "timestamp_unix", "par_threads", "elapsed_seconds",
    "tier1_status", "artifacts", "metrics", "trace", "attribution",
}
KNOWN_V5 = KNOWN_V3 | {"health"}
for p in paths:
    m = json.load(open(p))
    v = m.get("schema_version")
    assert v in (2, 3, 4, 5), f"{p}: schema_version {v!r} not in (2, 3, 4, 5)"
    if v == 5:
        unknown = sorted(set(m) - KNOWN_V5)
        assert not unknown, f"{p}: unknown top-level field(s) {unknown} in a v5 manifest"
print(f"    {len(paths)} manifest(s) emitted this run, all at schema version 2..5")
EOF

echo "==> report gate: clean quick benches, then sc_report against results/baseline"
# The fault-armed serve_storm run above overwrote its manifest with an
# sc_faults config entry, which sc_report treats as config drift — so
# regenerate the baselined benches clean (same SC_THREADS as the
# baseline) before diffing.
env -u SC_FAULTS SC_THREADS=4 \
    cargo run --release -q -p sc-bench --bin serve_storm -- --quick >/dev/null
env -u SC_FAULTS SC_THREADS=4 \
    cargo run --release -q -p sc-bench --bin fault_sweep -- --quick >/dev/null
# bench_parallel self-asserts the >=8x bitplane MVM speedup and records
# the bench.speedup.* gauges that sc_report floor-gates (its wall-clock
# manifest is floor-checked, not baseline-diffed).
env -u SC_FAULTS SC_THREADS=4 \
    cargo run --release -q -p sc-bench --bin bench_parallel -- --quick >/dev/null
cargo run --release -q -p sc-bench --bin sc_report

echo "==> results gate: bare JSON exports carry schema_version"
# Every results/<bench>.json goes through the shared results_json
# writer, which stamps schema_version (wrapping top-level arrays as
# {"schema_version": N, "rows": [...]}). The clean regen above
# refreshed all three, so a missing stamp means a bench bypassed the
# shared writer.
python3 - <<'EOF'
import json
for p in ("results/serve_storm.json", "results/fault_sweep.json", "results/parallel.json"):
    v = json.load(open(p)).get("schema_version")
    assert v == 1, f"{p}: schema_version {v!r}, expected 1"
print("    3 results export(s) stamped at schema version 1")
EOF

echo "==> health gate: incident snapshots, manifest health block, prom exposition"
# The clean serve_storm regen above still arms a scoped flip@0.9 plan
# inside its spike-faulted scenario, so that storm must freeze at least
# one incident snapshot while the clean ramp freezes none; the run
# manifest must carry the v4 health summary with a breached verdict.
python3 - <<'EOF'
import glob, json
paths = sorted(p for p in glob.glob("results/incidents/*.json")
               if not p.endswith("index.json"))
snaps = [json.load(open(p)) for p in paths]
assert snaps, "serve_storm wrote no incident snapshots"
idx = json.load(open("results/incidents/index.json"))
assert idx["count"] == len(snaps), \
    f"incidents/index.json counts {idx['count']}, found {len(snaps)} snapshot files"
indexed = sorted(e["file"] for e in idx["incidents"])
assert indexed == sorted(p.split("/")[-1] for p in paths), \
    "incidents/index.json does not list exactly the snapshot files on disk"
scenarios = {s["scenario"] for s in snaps}
assert "spike-faulted" in scenarios, \
    "faulted-backend storm froze no incident snapshot"
assert "ramp" not in scenarios, \
    "clean ramp froze an incident snapshot; clean objectives must stay green"
for s in snaps:
    inc = s["incident"]
    for key in ("objective", "cycle", "windows", "spans", "state"):
        assert key in inc, f"incident snapshot missing {key!r}"
    ex = s.get("exemplar_traces")
    assert ex and all(t.startswith("0x") for t in ex), \
        f"incident snapshot carries no exemplar trace ids: {ex!r}"
for e in idx["incidents"]:
    ex = e.get("exemplar_traces")
    assert ex and all(t.startswith("0x") for t in ex), \
        f"incidents/index.json entry {e['file']} carries no exemplar trace ids"
m = json.load(open("results/serve_storm.manifest.json"))
h = m.get("health")
assert h is not None, "serve_storm manifest carries no health summary"
assert h["verdict"] == "breached" and h["incidents"] >= 1, \
    f"expected a breached verdict with incidents, got {h}"
print(f"    {len(snaps)} incident snapshot(s), scenarios {sorted(scenarios)}")
EOF
cargo run --release -q -p sc-bench --bin sc_health >/dev/null
python3 - <<'EOF'
import glob
proms = sorted(glob.glob("results/*.prom"))
assert proms, "sc_health wrote no prometheus dumps"
text = open("results/serve_storm.prom").read()
for needle in ("# TYPE", "sc_health_verdict", "sc_health_breaches"):
    assert needle in text, f"serve_storm.prom missing {needle!r}"
print(f"    {len(proms)} prometheus dump(s) written")
EOF

echo "==> chaos gate: minority-kill stays green, majority-kill breaches with shard snapshots"
# The fleet storms are self-asserting inside serve_storm; this gate
# re-checks the contract from the emitted artifacts so a regression in
# the JSON export (not just the in-process asserts) also fails CI. The
# clean regen above produced results/serve_storm.json and the
# results/incidents/ flight-recorder files.
python3 - <<'EOF'
import glob, json
r = json.load(open("results/serve_storm.json"))
fleet = {s["scenario"]: s for s in r["fleet_scenarios"]}
mk = fleet["fleet-minority-kill"]
assert mk["fleet_health"]["verdict"] == "green", \
    f"minority-kill fleet verdict is {mk['fleet_health']['verdict']!r}, not green"
assert mk["fleet_health"]["breaches"] == 0, "minority-kill must not breach the fleet SLO"
assert mk["failovers"] >= 1, "minority-kill recorded no failovers"
assert mk["hedges_launched"] >= 1, "minority-kill launched no hedged requests"
mj = fleet["fleet-majority-kill"]
assert mj["fleet_health"]["breaches"] >= 1, "majority-kill must breach the strict fleet SLO"
assert mj["fleet_health"]["recoveries"] >= 1, "majority-kill must recover after the window"
assert mj["degraded"] >= 1, "majority-kill must serve degraded through the EDT ladder"
snaps = [json.load(open(p)) for p in sorted(glob.glob("results/incidents/*.json"))
         if not p.endswith("index.json")]
shard_snaps = [s for s in snaps if s.get("scenario") == "fleet-majority-kill" and "shard" in s]
assert shard_snaps, "majority-kill froze no per-shard incident snapshots"
assert any(isinstance(s["shard"], int) for s in shard_snaps), \
    "no majority-kill incident snapshot is tagged with a replica index"
print(f"    minority-kill green ({mk['failovers']} failover(s), {mk['hedges_launched']} hedge(s)); "
      f"majority-kill {mj['fleet_health']['breaches']} breach(es), "
      f"{len(shard_snaps)} shard snapshot(s)")
EOF

echo "==> recovery gate: crash loop rejoins green, restart-fail re-enters backoff"
# The recovery storms are self-asserting inside serve_storm; this gate
# re-checks the replica-lifecycle contract from the emitted artifacts:
# the crash-restart-loop storm must end SLO-green with every replica
# live, at least one rejoin through probation, replayed stranded work,
# and zero lost accepted requests; the restart-fail storm must show
# blocked restarts re-entering backoff before the site clears.
python3 - <<'EOF'
import json
r = json.load(open("results/serve_storm.json"))
fleet = {s["scenario"]: s for s in r["fleet_scenarios"]}

loop = fleet["fleet-crash-restart-loop"]
rec = loop["recovery"]
assert loop["fleet_health"]["verdict"] == "green", \
    f"crash-restart-loop verdict is {loop['fleet_health']['verdict']!r}, not green"
assert loop["fleet_health"]["breaches"] == 0, "crash-restart-loop must not breach the fleet SLO"
assert rec["rejoins"] >= 1, "the crashed replica never rejoined"
assert rec["promotions"] >= 1, "the rejoined replica never walked probation to full weight"
assert rec["restarts_failed"] >= 2, \
    "restarts inside the open crash window must be blocked back into backoff"
assert rec["replayed_inflight"] + rec["replayed_queued"] >= 1, \
    "the crash stranded no journaled work to replay"
accounted = loop["completed"] + loop["shed"] + loop["timed_out"] + loop["failed"]
assert accounted == loop["requests"], \
    f"crash-restart-loop lost requests: {accounted} accounted of {loop['requests']}"
assert all(sh["lifecycle"] == "live" for sh in loop["shards"]), \
    "a replica ended the crash-restart-loop storm not live"

roll = fleet["fleet-rolling-restart"]
rrec = roll["recovery"]
n = len(roll["shards"])
assert (rrec["downs"], rrec["rejoins"], rrec["promotions"]) == (n, n, n), \
    f"rolling restart must cycle every replica once, got {rrec}"
assert roll["shed"] + roll["timed_out"] + roll["failed"] == 0, \
    "a rolling restart must lose no accepted request"
assert roll["fleet_health"]["verdict"] == "green", "rolling restart must stay SLO-green"

rf = fleet["fleet-restart-fail"]["recovery"]
assert rf["restarts_failed"] >= 2, \
    "the restart_fail site must block at least two attempts (backoff re-entry)"
assert rf["restarts_attempted"] == rf["restarts_failed"] + 1, \
    "the attempt after the site clears must land"
assert rf["rejoins"] == 1, "the blocked replica must eventually rejoin"

m = json.load(open("results/serve_storm.manifest.json"))["metrics"]["counters"]
for k in ("serve.recovery.down", "serve.recovery.rejoin", "serve.recovery.promote",
          "serve.recovery.restart_fail", "attr.cycles.recovery_replay"):
    assert m.get(k, 0) > 0, f"serve_storm manifest missing {k}"
print(f"    crash loop: {rec['restarts_failed']} blocked restart(s), "
      f"{rec['replayed_inflight'] + rec['replayed_queued']} replayed entr(ies); "
      f"rolling restart cycled {n} replica(s); "
      f"restart-fail re-entered backoff {rf['restarts_failed']}x")
EOF

echo "==> obs gate: event log and sc_obs answers byte-identical across engines and threads"
# The observability plane is part of the deterministic contract: the
# per-request event log, the folded cycle profile, and every sc_obs
# answer must come out byte for byte the same whichever engine or
# worker count served the storm. The clean SC_THREADS=4 regen above
# (default engine = bitplane) is the reference; replay the storm across
# the engine/thread matrix and byte-compare. The matrix ends on
# bitplane/4, so the artifacts left on disk match the report-gate regen.
OBS_REF="$(mktemp -d)"
cp results/obs/serve_storm.events.jsonl results/obs/serve_storm.folded "$OBS_REF"/
obs_queries() {
    local out="$1"
    cargo run --release -q -p sc-bench --bin sc_obs -- summary > "$out/summary.txt"
    cargo run --release -q -p sc-bench --bin sc_obs -- top --k 5 \
        --scenario obs-heavy-tail-x8 > "$out/top.txt"
    cargo run --release -q -p sc-bench --bin sc_obs -- breakdown --by tier > "$out/breakdown.txt"
    cargo run --release -q -p sc-bench --bin sc_obs -- series \
        --scenario obs-heavy-tail-x4 > "$out/series.txt"
    cargo run --release -q -p sc-bench --bin sc_obs -- exemplars \
        --scenario spike-faulted > "$out/exemplars.txt"
}
obs_queries "$OBS_REF"
for eng in cycle bitplane; do
    for t in 1 4; do
        env -u SC_FAULTS SC_ENGINE="$eng" SC_THREADS="$t" \
            cargo run --release -q -p sc-bench --bin serve_storm -- --quick >/dev/null
        cmp results/obs/serve_storm.events.jsonl "$OBS_REF/serve_storm.events.jsonl" \
            || { echo "event log differs under SC_ENGINE=$eng SC_THREADS=$t" >&2; exit 1; }
        cmp results/obs/serve_storm.folded "$OBS_REF/serve_storm.folded" \
            || { echo "folded profile differs under SC_ENGINE=$eng SC_THREADS=$t" >&2; exit 1; }
        OBS_CUR="$(mktemp -d)"
        obs_queries "$OBS_CUR"
        for f in summary top breakdown series exemplars; do
            cmp "$OBS_CUR/$f.txt" "$OBS_REF/$f.txt" \
                || { echo "sc_obs $f differs under SC_ENGINE=$eng SC_THREADS=$t" >&2; exit 1; }
        done
        rm -rf "$OBS_CUR"
        echo "    SC_ENGINE=$eng SC_THREADS=$t: 2 artifacts + 5 sc_obs answers identical"
    done
done
rm -rf "$OBS_REF"

echo "==> report gate: a perturbed baseline must fail the gate"
PERTURBED="$(mktemp -d)"
cp results/baseline/*.manifest.json "$PERTURBED"/
python3 - "$PERTURBED" <<'EOF'
import glob, json, sys
p = sorted(glob.glob(sys.argv[1] + "/*.manifest.json"))[0]
m = json.load(open(p))
for name in sorted(m["metrics"]["counters"]):
    if not name.startswith("par."):
        m["metrics"]["counters"][name] += 1
        break
else:
    raise SystemExit("no perturbable counter found in " + p)
json.dump(m, open(p, "w"))
EOF
if cargo run --release -q -p sc-bench --bin sc_report -- --baseline "$PERTURBED" >/dev/null 2>&1; then
    echo "sc_report accepted a perturbed baseline; the regression gate is broken" >&2
    rm -rf "$PERTURBED"
    exit 1
fi
rm -rf "$PERTURBED"
echo "    perturbed baseline rejected as expected"

echo "==> profile gate: a perturbed folded baseline must fail the differential profiler"
# Inflate the hottest stack in a copy of the committed cycle profile:
# its share of total cycles shifts well past --profile-tolerance, so
# sc_report's flamegraph diff must reject it even though the manifest
# counters still match exactly.
PERTURBED="$(mktemp -d)"
cp results/baseline/*.manifest.json results/baseline/*.folded "$PERTURBED"/
python3 - "$PERTURBED" <<'EOF'
import glob, sys
p = sorted(glob.glob(sys.argv[1] + "/*.folded"))[0]
lines = open(p).read().splitlines()
i = max(range(len(lines)), key=lambda j: int(lines[j].rsplit(" ", 1)[1]))
stack, count = lines[i].rsplit(" ", 1)
lines[i] = f"{stack} {int(count) * 10}"
open(p, "w").write("\n".join(lines) + "\n")
EOF
if cargo run --release -q -p sc-bench --bin sc_report -- --baseline "$PERTURBED" >/dev/null 2>&1; then
    echo "sc_report accepted a perturbed cycle profile; the differential profiler is broken" >&2
    rm -rf "$PERTURBED"
    exit 1
fi
rm -rf "$PERTURBED"
echo "    perturbed folded profile rejected as expected"

echo "==> fault gate: zero-rate plan is bitwise identical to no plan"
# The determinism suite asserts unarmed == zero-rate fingerprints and
# faulted-run reproducibility at SC_THREADS in {1, 2, 7}; run it under
# both CI thread counts so the identity holds at 1 and 4 workers too.
SC_THREADS=1 cargo test -q -p sc-bench --test determinism \
    accel_layer_under_faults_identical_across_thread_counts
SC_THREADS=4 cargo test -q -p sc-bench --test determinism \
    accel_layer_under_faults_identical_across_thread_counts

echo "CI gate passed."
